// Command xgccd is the long-running xgcc analysis daemon: it keeps
// the source tree, pass-1 ASTs, and per-unit analysis results
// resident, so repeated analyses after small edits replay everything
// the edit didn't touch (DESIGN.md §8).
//
// A typical session:
//
//	xgccd -addr :8745 -checkers free,lock,null -registry /var/lib/xgccd &
//	curl -s -X POST localhost:8745/v1/analyze \
//	    -d '{"files": {"drv.c": "void kfree(void *p); int f(int *p) { kfree(p); return *p; }"}}'
//	curl -s localhost:8745/v1/reports?format=text
//	curl -s localhost:8745/v1/metrics
//
// Checkers can also be uploaded at runtime through the /v1/checkers
// admission pipeline (upload, validate, enable; DESIGN.md §14) — an
// enabled checker is live on the tenant's next analyze without a
// restart, and with -registry the uploaded set survives restarts.
//
// The HTTP surface is versioned under /v1/; unversioned paths remain
// as aliases and answer with a Deprecation header. Governance flags bound the daemon's resource use:
// -max-inflight sheds excess analyze requests with 429,
// -request-timeout cancels overlong runs with 503, and the budget
// flags truncate runaway traversals (DESIGN.md §9).
//
// Scale-out (DESIGN.md §15): the same binary is every fleet role.
//
//	xgccd -coordinator -workers http://w1:8746,http://w2:8746
//	xgccd -worker -cas http://coordinator:8745/v1/cas -addr :8746
//
// A coordinator is an ordinary daemon that additionally serves its
// store at /v1/cas/ and schedules each run's cache-miss units onto
// the workers; workers fill unit cache keys in the shared store and
// hold no state a restart could lose. Without -coordinator/-worker
// the daemon is the unchanged single-process mode — output is
// byte-identical across all three shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/mc"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8745", "listen address")
		checkerList = flag.String("checkers", "free,lock,null", "comma-separated bundled checkers")
		cacheDir    = flag.String("cache", "", "persist the analysis cache in this directory (default: in-memory)")
		registryDir = flag.String("registry", "", "persist uploaded checkers in this directory so /v1/checkers state survives restarts (default: in-memory)")
		jobs        = flag.Int("j", 0, "analysis parallelism (0 = GOMAXPROCS)")
		noFPP       = flag.Bool("no-fpp", false, "disable false path pruning")
		noInter     = flag.Bool("no-inter", false, "disable interprocedural analysis")
		maxInflight = flag.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently admitted analyze requests (excess gets 429)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request analysis deadline (503 on expiry; 0 = unbounded)")
		pathSteps   = flag.Int64("budget-path-steps", 0, "per-path program-point budget (0 = unbounded)")
		funcBlocks  = flag.Int64("budget-func-blocks", 0, "per-root block-visit budget (0 = unbounded)")
		funcTime    = flag.Duration("budget-func-time", 0, "per-root wall-clock budget (0 = unbounded)")
		maxResident = flag.Int("max-resident-mb", 0, "soft memory budget in MiB: spill summaries to disk and release ASTs after unit retirement; output unchanged (0 = keep everything resident)")
		spillDir    = flag.String("spill-dir", "", "directory for spilled summaries (default: per-run temp dir; requires -max-resident-mb)")
		verify      = flag.Bool("verify", false, "run the asynchronous feasibility-verdict pipeline: analyze responses return immediately with verdict \"unverified\" and background workers annotate reports confirmed/infeasible/unknown (DESIGN.md §13)")
		verifyJobs  = flag.Int("verify-workers", 1, "verdict worker pool size (requires -verify)")

		// Fleet roles (DESIGN.md §15).
		coordinator = flag.Bool("coordinator", false, "run as a fleet coordinator: serve the store at /v1/cas/ and schedule cache-miss units onto -workers")
		worker      = flag.Bool("worker", false, "run as a fleet worker: serve /v1/work over the shared CAS given by -cas (no analyze surface)")
		workerList  = flag.String("workers", "", "comma-separated worker base URLs (coordinator mode)")
		casURL      = flag.String("cas", "", "shared CAS base URL: required for -worker; optional for -coordinator to use an external CAS instead of its own store")
		readyFile   = flag.String("ready-file", "", "after listening, write the actual listen address to this file (smoke tests and scripts)")
	)
	var checkerFiles []string
	flag.Func("checker-file", "load a metal checker from a file (repeatable)", func(path string) error {
		checkerFiles = append(checkerFiles, path)
		return nil
	})
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "usage: xgccd [flags]\n")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *coordinator && *worker {
		log.Fatalf("xgccd: -coordinator and -worker are mutually exclusive")
	}

	// Worker mode: no resident tree, no registry, no analyze surface —
	// just the job protocol over the shared store.
	if *worker {
		if *casURL == "" {
			log.Fatalf("xgccd: -worker requires -cas (the shared CAS base URL)")
		}
		w := fleet.NewWorker(cache.NewHTTPStore(*casURL, nil), *jobs)
		log.Printf("xgccd: worker listening on %s (cas: %s)", *addr, *casURL)
		serve(*addr, *readyFile, w.Handler())
		return
	}

	opts := mc.DefaultOptions()
	opts.FPP = !*noFPP
	opts.Interprocedural = !*noInter

	cfg := server.Config{
		Options:        &opts,
		Jobs:           *jobs,
		MaxInFlight:    *maxInflight,
		RequestTimeout: *reqTimeout,
		Budgets: mc.Budgets{
			PathSteps:  *pathSteps,
			FuncBlocks: *funcBlocks,
			FuncTime:   *funcTime,
		},
		MaxResidentMB: *maxResident,
		SpillDir:      *spillDir,
		Verify:        *verify,
		VerifyWorkers: *verifyJobs,
	}
	for _, name := range strings.Split(*checkerList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			cfg.Checkers = append(cfg.Checkers, name)
		}
	}
	for _, path := range checkerFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("xgccd: %v", err)
		}
		cfg.CheckerSources = append(cfg.CheckerSources, string(src))
	}
	if *cacheDir != "" {
		ds, err := cache.NewDirStore(*cacheDir)
		if err != nil {
			log.Fatalf("xgccd: open cache: %v", err)
		}
		cfg.Store = ds
	}
	if *registryDir != "" {
		reg, err := registry.Open(*registryDir)
		if err != nil {
			log.Fatalf("xgccd: open registry: %v", err)
		}
		cfg.Registry = reg
	}

	if *coordinator {
		// The coordinator's store IS the shared CAS: served at
		// /v1/cas/ for workers, analyzed against locally. With -cas it
		// instead joins an external CAS (and still re-serves it, so
		// workers may point at either).
		if *casURL != "" {
			cfg.Store = cache.NewHTTPStore(*casURL, nil)
		}
		cfg.ShareCAS = true
		var workers []string
		for _, u := range strings.Split(*workerList, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workers = append(workers, u)
			}
		}
		if len(workers) == 0 {
			log.Printf("xgccd: coordinator with no -workers: every unit runs locally until workers join a future restart")
		}
		co := fleet.NewCoordinator(fleet.Config{Workers: workers})
		defer co.Close()
		cfg.Fleet = co
		log.Printf("xgccd: coordinator listening on %s (workers: %d)", *addr, len(workers))
	}

	srv := server.New(cfg)
	if !*coordinator {
		log.Printf("xgccd: listening on %s (checkers: %s, max-inflight: %d)", *addr, *checkerList, *maxInflight)
	}
	serve(*addr, *readyFile, srv.Handler())
}

// serve listens, optionally publishes the bound address to readyFile
// (written atomically next to its final name, so a watcher never reads
// a half-written path), and blocks serving h.
func serve(addr, readyFile string, h http.Handler) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("xgccd: listen: %v", err)
	}
	if readyFile != "" {
		tmp := readyFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatalf("xgccd: ready file: %v", err)
		}
		if err := os.Rename(tmp, readyFile); err != nil {
			log.Fatalf("xgccd: ready file: %v", err)
		}
	}
	hs := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	if err := hs.Serve(ln); err != nil {
		log.Fatalf("xgccd: %v", err)
	}
}
