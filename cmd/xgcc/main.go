// Command xgcc is the analysis driver: it applies metal checkers to C
// sources and prints ranked error reports, reproducing the workflow of
// the paper's xgcc system.
//
// Usage:
//
//	xgcc -checker free,lock file1.c file2.c
//	xgcc -checker-file my_checker.metal -rank z file.c
//	xgcc -checker-file my_checker.metal -validate
//	xgcc -list
//
// -validate runs the admission harness (DESIGN.md §14) instead of an
// analysis: the checker executes against a seeded true/false-positive
// corpus under panic, budget, and time isolation, and the structured
// verdict decides the exit code — the same gate xgccd applies before
// an uploaded checker can be enabled.
//
// Exit codes: 0 clean (or checker admitted with -validate), 1
// findings with -exit-code (or checker rejected with -validate), 2
// usage or analysis error, 3 cancelled or timed out (-timeout,
// SIGINT, SIGTERM).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"syscall"

	"time"

	"repro/internal/checkers"
	"repro/internal/feas"
	"repro/internal/harness"
	"repro/internal/profiling"
	"repro/mc"
)

func main() {
	var (
		checkerNames = flag.String("checker", "free", "comma-separated bundled checker names")
		checkerFile  = flag.String("checker-file", "", "path to a metal checker source file")
		list         = flag.Bool("list", false, "list bundled checkers and exit")
		rankMode     = flag.String("rank", "generic", "report ordering: generic, z, or grouped")
		stats        = flag.Bool("stats", false, "print engine statistics")
		supergraph   = flag.String("supergraph", "", "print block/suffix summaries for the named function (Figure 5 style)")
		twoPass      = flag.Bool("two-pass", false, "emit ASTs to temp files and reload them (the paper's pass 1/pass 2 pipeline)")
		detailed     = flag.Bool("why", false, "print why-traces with each report")
		verify       = flag.Bool("verify", false, "run the second-tier feasibility pass: replay each report's witness path and annotate it confirmed/infeasible/unknown (verdicts never add or remove reports or change exit codes)")
		validate     = flag.Bool("validate", false, "run the admission harness on the checker instead of analyzing files: exit 0 admitted, 1 rejected, 2 error (combine with -checker-file or -checker; -json for the raw verdict)")
		jsonOut      = flag.Bool("json", false, "emit reports as JSON lines")
		intra        = flag.Bool("intra", false, "disable interprocedural analysis")
		noFPP        = flag.Bool("no-fpp", false, "disable false path pruning")
		marks        = flag.String("mark", "", "function annotations, e.g. might_sleep=blocking,panic=pathkill")
		baseline     = flag.String("baseline", "", "history file: suppress reports recorded there; new reports are appended (§8 History)")
		jobs         = flag.Int("j", 0, "parallel workers for parsing and checker execution (0 = GOMAXPROCS); output is identical at every level")
		cacheDir     = flag.String("cache", "", "persist parsed ASTs and per-unit results here; warm re-runs replay unchanged work (DESIGN.md §8)")
		exitCode     = flag.Bool("exit-code", false, "exit 1 if any non-suppressed report is emitted (errors exit 2, cancellation exits 3)")
		timeout      = flag.Duration("timeout", 0, "abort the analysis after this duration, exit 3 (0 = unbounded)")
		pathSteps    = flag.Int64("budget-path-steps", 0, "per-path program-point budget; a tripped budget truncates the path and flags the run degraded (0 = unbounded)")
		funcBlocks   = flag.Int64("budget-func-blocks", 0, "per-root block-visit budget (0 = unbounded)")
		funcTime     = flag.Duration("budget-func-time", 0, "per-root wall-clock budget (0 = unbounded)")
		maxResident  = flag.Int("max-resident-mb", 0, "soft memory budget in MiB: spill function summaries to disk and release ASTs once their unit retires; output is byte-identical (0 = keep everything resident)")
		spillDir     = flag.String("spill-dir", "", "directory for spilled summaries (default: per-run temp dir; requires -max-resident-mb)")
		cpuprofile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: xgcc [flags] file.c ...")
		fmt.Fprintln(os.Stderr, "exit codes: 0 clean; 1 findings (-exit-code); 2 usage/analysis error; 3 cancelled or timed out")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, s := range checkers.All() {
			fmt.Printf("%-14s %s\n", s.Name, s.Doc)
		}
		return
	}
	if *validate {
		runValidate(*checkerFile, *checkerNames, *jobs, *timeout, mc.Budgets{
			PathSteps:  *pathSteps,
			FuncBlocks: *funcBlocks,
			FuncTime:   *funcTime,
		}, *jsonOut)
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "xgcc: no input files (try -list, or: xgcc -checker free file.c)")
		os.Exit(2)
	}

	// Every exit path must flush the profiles: the normal returns run
	// the defer, while fatal() and the explicit os.Exit sites (which
	// skip defers) call the idempotent stopProf themselves.
	if sp, err := profiling.Start(*cpuprofile, *memprofile); err != nil {
		fatal(err)
	} else {
		stopProf = sp
	}
	defer stopProf()

	a := mc.NewAnalyzer()
	opts := mc.DefaultOptions()
	opts.Interprocedural = !*intra
	opts.FPP = !*noFPP
	if err := a.Configure(mc.RunConfig{
		Options:  &opts,
		Jobs:     *jobs,
		CacheDir: *cacheDir,
		Timeout:  *timeout,
		Budgets: mc.Budgets{
			PathSteps:  *pathSteps,
			FuncBlocks: *funcBlocks,
			FuncTime:   *funcTime,
		},
		MaxResidentMB: *maxResident,
		SpillDir:      *spillDir,
	}); err != nil {
		fatal(err)
	}

	for _, path := range flag.Args() {
		if *twoPass {
			data, err := os.ReadFile(path)
			if err != nil {
				fatal(err)
			}
			emitted, err := mc.EmitAST(path, string(data))
			if err != nil {
				fatal(err)
			}
			tmp, err := os.CreateTemp("", "xgcc-ast-*.sx")
			if err != nil {
				fatal(err)
			}
			if _, err := tmp.Write(emitted); err != nil {
				fatal(err)
			}
			tmp.Close()
			reloaded, err := os.ReadFile(tmp.Name())
			if err != nil {
				fatal(err)
			}
			os.Remove(tmp.Name())
			f, err := mc.LoadAST(reloaded)
			if err != nil {
				fatal(err)
			}
			a.AddAST(f)
			continue
		}
		if info, err := os.Stat(path); err == nil && info.IsDir() {
			if err := a.AddDirectory(path); err != nil {
				fatal(err)
			}
			continue
		}
		if err := a.AddFile(path); err != nil {
			fatal(err)
		}
	}

	if *checkerFile != "" {
		data, err := os.ReadFile(*checkerFile)
		if err != nil {
			fatal(err)
		}
		if err := a.LoadChecker(string(data)); err != nil {
			fatal(err)
		}
	}
	if *checkerFile == "" || *checkerNames != "free" {
		for _, name := range strings.Split(*checkerNames, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if err := a.LoadBundledChecker(name); err != nil {
				fatal(err)
			}
		}
	}
	if *marks != "" {
		for _, m := range strings.Split(*marks, ",") {
			kv := strings.SplitN(m, "=", 2)
			if len(kv) == 2 {
				a.MarkFunction(kv[0], kv[1])
			}
		}
	}

	if *baseline != "" {
		old, err := readBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		a.SetHistory(old)
	}

	// SIGINT/SIGTERM cancel the analysis mid-traversal; together with
	// -timeout both surface as exit 3, distinct from findings (1) and
	// errors (2).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := a.RunContext(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "xgcc: analysis cancelled:", err)
			stopProf()
			os.Exit(3)
		}
		fatal(err)
	}
	for _, f := range res.Failures {
		fmt.Fprintf(os.Stderr, "xgcc: checker %s panicked at root %s (contained): %s\n", f.Checker, f.Root, f.Panic)
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "xgcc: results degraded: %d traversal(s) truncated by budget\n", len(res.Degradations))
	}
	var feasStats feas.Stats
	if *verify {
		workers := *jobs
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		feasStats = a.Verify(res, workers)
	}
	if *baseline != "" {
		if err := appendBaseline(*baseline, res.Reports); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, r := range res.ZRanked() {
			if err := enc.Encode(jsonReport(r)); err != nil {
				fatal(err)
			}
		}
		if *exitCode && len(res.Reports) > 0 {
			stopProf()
			os.Exit(1)
		}
		return
	}

	switch *rankMode {
	case "z":
		for _, r := range res.ZRanked() {
			printReport(r, *detailed)
		}
	case "grouped":
		for _, g := range res.Grouped() {
			fmt.Printf("=== rule %s (z=%.2f, %d reports) ===\n", g.Rule, g.Z, len(g.Reports))
			for _, r := range g.Reports {
				printReport(r, *detailed)
			}
		}
	default:
		for _, r := range res.Ranked() {
			printReport(r, *detailed)
		}
	}
	fmt.Printf("%d reports\n", len(res.Reports))

	if *supergraph != "" {
		for name, en := range res.Engines {
			fmt.Printf("--- supergraph of %s under checker %s ---\n", *supergraph, name)
			fmt.Print(en.SupergraphString(*supergraph))
		}
	}
	if *stats {
		names := make([]string, 0, len(res.Stats))
		for n := range res.Stats {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			s := res.Stats[n]
			fmt.Printf("checker %s: points=%d blocks=%d paths=%d pruned=%d cache-hits=%d fn-cache-hits=%d\n",
				n, s.Points, s.Blocks, s.Paths, s.PrunedPaths, s.CacheHits, s.FuncCacheHits)
		}
		if *verify {
			fmt.Printf("feas: done=%d confirmed=%d infeasible=%d unknown=%d cache-hits=%d p50=%dus p95=%dus\n",
				feasStats.Done, feasStats.Confirmed, feasStats.Infeasible, feasStats.Unknown,
				feasStats.CacheHits, feasStats.P50Micros, feasStats.P95Micros)
		}
		if sp := res.Spill; sp != nil {
			fmt.Printf("spill: evictions=%d reloads=%d puts=%d bytes=%d asts-released=%d\n",
				sp.Evictions, sp.Reloads, sp.SpillPuts, sp.SpillBytes, sp.ASTsReleased)
		}
		if in := res.Incr; in != nil {
			fmt.Printf("cache: files reparsed=%d replayed=%d; units live=%d replayed=%d; funcs live=%d replayed=%d changed=%d invalidated=%d; store hits=%d misses=%d puts=%d\n",
				in.FilesReparsed, in.FilesReplayed, in.UnitsLive, in.UnitsReplayed,
				in.FuncsAnalyzedLive, in.FuncsAnalyzedReplayed, in.FuncsChanged, in.FuncsInvalidated,
				in.CacheHits, in.CacheMisses, in.CachePuts)
		}
	}
	if *exitCode && len(res.Reports) > 0 {
		stopProf()
		os.Exit(1)
	}
}

// stopProf flushes any active profiles; fatal and the explicit os.Exit
// sites call it because os.Exit skips deferred functions.
var stopProf = func() {}

// runValidate is the -validate mode: the admission harness instead of
// an analysis. The checker comes from -checker-file when given,
// otherwise from the (single) -checker name; budget flags override the
// harness defaults so a stricter local gate is one flag away.
func runValidate(checkerFile, checkerNames string, jobs int, timeout time.Duration, budgets mc.Budgets, jsonOut bool) {
	var src string
	if checkerFile != "" {
		data, err := os.ReadFile(checkerFile)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	} else {
		names := strings.Split(checkerNames, ",")
		if len(names) != 1 || strings.TrimSpace(names[0]) == "" {
			fatal(errors.New("-validate takes one checker: -checker-file path, or a single -checker name"))
		}
		found := false
		for _, s := range checkers.All() {
			if s.Name == strings.TrimSpace(names[0]) {
				src, found = s.Text, true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("no bundled checker %q (try -list)", names[0]))
		}
	}

	cfg := harness.DefaultConfig()
	cfg.Jobs = jobs
	if timeout > 0 {
		cfg.Timeout = timeout
	}
	if budgets.PathSteps > 0 {
		cfg.Budgets.PathSteps = budgets.PathSteps
	}
	if budgets.FuncBlocks > 0 {
		cfg.Budgets.FuncBlocks = budgets.FuncBlocks
	}
	if budgets.FuncTime > 0 {
		cfg.Budgets.FuncTime = budgets.FuncTime
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	v, err := harness.Validate(ctx, src, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "xgcc: validation cancelled:", err)
			stopProf()
			os.Exit(3)
		}
		fatal(err)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			fatal(err)
		}
	} else {
		fmt.Printf("checker %s: %s\n", v.Checker, v.Status)
		fmt.Printf("  reports=%d true-positives=%d false-positives=%d seeded-bugs=%d\n",
			v.Reports, v.TruePositives, v.FalsePositives, v.SeededBugs)
		fmt.Printf("  kill-rate=%.2f z=%.2f degradations=%d elapsed=%dms\n",
			v.KillRate, v.Z, v.Degradations, v.ElapsedMS)
		if v.Panicked {
			fmt.Printf("  panicked: %s\n", v.PanicValue)
		}
		for _, r := range v.Reasons {
			fmt.Printf("  rejected: %s\n", r)
		}
	}
	if !v.Admitted() {
		stopProf()
		os.Exit(1)
	}
}

// reportJSON is the machine-readable report shape.
type reportJSON struct {
	File            string   `json:"file"`
	Line            int      `json:"line"`
	Col             int      `json:"col"`
	Checker         string   `json:"checker"`
	Rule            string   `json:"rule"`
	Message         string   `json:"message"`
	Function        string   `json:"function"`
	Class           string   `json:"class,omitempty"`
	Distance        int      `json:"distance"`
	Conditionals    int      `json:"conditionals"`
	SynonymDepth    int      `json:"synonym_depth,omitempty"`
	Interprocedural bool     `json:"interprocedural,omitempty"`
	Trace           []string `json:"trace,omitempty"`
	Verdict         string   `json:"verdict,omitempty"`
	VerdictWhy      string   `json:"verdict_why,omitempty"`
}

func jsonReport(r *mc.Report) reportJSON {
	return reportJSON{
		File:            r.Pos.File,
		Line:            r.Pos.Line,
		Col:             r.Pos.Col,
		Checker:         r.Checker,
		Rule:            r.Rule,
		Message:         r.Msg,
		Function:        r.Func,
		Class:           string(r.Class),
		Distance:        r.Distance(),
		Conditionals:    r.Conditionals,
		SynonymDepth:    r.SynonymDepth,
		Interprocedural: r.Interprocedural,
		Trace:           r.Trace,
		Verdict:         r.Verdict,
		VerdictWhy:      r.VerdictWhy,
	}
}

func printReport(r *mc.Report, detailed bool) {
	if detailed {
		fmt.Print(r.Detailed())
		if r.Verdict != "" {
			fmt.Printf("    verdict: %s (%s)\n", r.Verdict, r.VerdictWhy)
		}
		return
	}
	if r.Verdict != "" {
		fmt.Printf("%s [%s]\n", r, r.Verdict)
		return
	}
	fmt.Println(r)
}

// baselineEntry is the persisted history record: exactly the §8
// matching fields ("relatively invariant under edits"), no line
// numbers.
type baselineEntry struct {
	File    string   `json:"file"`
	Func    string   `json:"function"`
	Vars    []string `json:"vars"`
	Checker string   `json:"checker"`
	Message string   `json:"message"`
}

func readBaseline(path string) ([]*mc.Report, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []baselineEntry
	if len(data) > 0 {
		if err := json.Unmarshal(data, &entries); err != nil {
			return nil, fmt.Errorf("baseline %s: %w", path, err)
		}
	}
	out := make([]*mc.Report, len(entries))
	for i, e := range entries {
		r := &mc.Report{Checker: e.Checker, Msg: e.Message, Func: e.Func, Vars: e.Vars}
		r.Pos.File = e.File
		out[i] = r
	}
	return out, nil
}

func appendBaseline(path string, reports []*mc.Report) error {
	old, err := readBaseline(path)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	var entries []baselineEntry
	add := func(r *mc.Report) {
		key := r.HistoryKey()
		if seen[key] {
			return
		}
		seen[key] = true
		entries = append(entries, baselineEntry{
			File: r.Pos.File, Func: r.Func, Vars: r.Vars,
			Checker: r.Checker, Message: r.Msg,
		})
	}
	for _, r := range old {
		add(r)
	}
	for _, r := range reports {
		add(r)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(path, data)
}

// atomicWrite replaces path via a temp file in the same directory plus
// rename, so a crash mid-write never leaves a truncated baseline (the
// old file survives intact until the rename commits).
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// fatal reports a usage or environment error. Exit code 2 keeps these
// distinct from -exit-code's "findings" exit 1.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xgcc:", err)
	stopProf()
	os.Exit(2)
}
