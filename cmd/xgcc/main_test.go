package main

// End-to-end CLI tests: build the xgcc binary once and drive it as a
// subprocess, checking exit codes (-exit-code), the persistent cache
// (-cache), and baseline atomicity.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

const buggySrc = `void kfree(void *p);
int use_after(int *p) {
    kfree(p);
    return *p;
}
`

const cleanSrc = `int add(int a, int b) {
    return a + b;
}
`

var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func xgccBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "xgcc-cli-*")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "xgcc")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("build xgcc: %v", buildErr)
	}
	return binPath
}

// runXgcc runs the binary and returns combined output and exit code.
func runXgcc(t *testing.T, dir string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(xgccBin(t), args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return string(out), ee.ExitCode()
	}
	t.Fatalf("run xgcc: %v", err)
	return "", -1
}

func writeSrc(t *testing.T, dir, name, src string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestExitCodeFlag(t *testing.T) {
	dir := t.TempDir()
	buggy := writeSrc(t, dir, "buggy.c", buggySrc)
	clean := writeSrc(t, dir, "clean.c", cleanSrc)

	// Default: findings do not change the exit code.
	out, code := runXgcc(t, dir, "-checker", "free", buggy)
	if code != 0 || !strings.Contains(out, "after free") {
		t.Errorf("default run: code %d, out %.200s", code, out)
	}
	// -exit-code: findings exit 1.
	if _, code = runXgcc(t, dir, "-checker", "free", "-exit-code", buggy); code != 1 {
		t.Errorf("-exit-code with findings: code %d", code)
	}
	// -exit-code on clean input exits 0.
	if _, code = runXgcc(t, dir, "-checker", "free", "-exit-code", clean); code != 0 {
		t.Errorf("-exit-code clean: code %d", code)
	}
	// -exit-code also applies on the JSON output path.
	if _, code = runXgcc(t, dir, "-checker", "free", "-exit-code", "-json", buggy); code != 1 {
		t.Errorf("-exit-code -json with findings: code %d", code)
	}
	// Usage and environment errors stay exit 2.
	if _, code = runXgcc(t, dir, "-checker", "free"); code != 2 {
		t.Errorf("no inputs: code %d", code)
	}
	if _, code = runXgcc(t, dir, "-checker", "no-such-checker", buggy); code != 2 {
		t.Errorf("unknown checker: code %d", code)
	}
	if _, code = runXgcc(t, dir, "-checker", "free", filepath.Join(dir, "missing.c")); code != 2 {
		t.Errorf("missing input: code %d", code)
	}
}

// TestTimeoutExitCode3: an expired -timeout exits 3, distinct from
// findings (1) and errors (2), and -h documents the code map.
func TestTimeoutExitCode3(t *testing.T) {
	dir := t.TempDir()
	buggy := writeSrc(t, dir, "buggy.c", buggySrc)

	out, code := runXgcc(t, dir, "-checker", "free", "-timeout", "1ns", buggy)
	if code != 3 {
		t.Errorf("-timeout 1ns: code %d, want 3 (out %.200s)", code, out)
	}
	if !strings.Contains(out, "cancelled") {
		t.Errorf("timeout message missing: %.200s", out)
	}
	// A generous timeout behaves normally.
	if _, code = runXgcc(t, dir, "-checker", "free", "-timeout", "1m", buggy); code != 0 {
		t.Errorf("-timeout 1m: code %d, want 0", code)
	}
	// -h documents the exit-code contract.
	usage, _ := runXgcc(t, dir, "-h")
	if !strings.Contains(usage, "3 cancelled or timed out") {
		t.Errorf("usage does not document exit codes: %.300s", usage)
	}
}

// TestBudgetFlagReportsDegradation: a tripped traversal budget keeps
// exit code 0 but warns on stderr.
func TestBudgetFlagReportsDegradation(t *testing.T) {
	dir := t.TempDir()
	branchy := writeSrc(t, dir, "branchy.c", `void kfree(void *p);
int g(int *p, int c) {
    kfree(p);
    if (c) { return *p; }
    return 0;
}
`)
	out, code := runXgcc(t, dir, "-checker", "free", "-budget-path-steps", "1", branchy)
	if code != 0 {
		t.Fatalf("degraded run: code %d, out %.300s", code, out)
	}
	if !strings.Contains(out, "degraded") {
		t.Errorf("no degradation warning: %.300s", out)
	}
}

func TestCacheFlagWarmRunIdentical(t *testing.T) {
	dir := t.TempDir()
	buggy := writeSrc(t, dir, "buggy.c", buggySrc)
	cacheDir := filepath.Join(dir, "cache")

	cold, code := runXgcc(t, dir, "-checker", "free,null", "-cache", cacheDir, buggy)
	if code != 0 {
		t.Fatalf("cold run: code %d, out %.300s", code, cold)
	}
	warm, code := runXgcc(t, dir, "-checker", "free,null", "-cache", cacheDir, buggy)
	if code != 0 {
		t.Fatalf("warm run: code %d", code)
	}
	if cold != warm {
		t.Errorf("warm output differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	// -stats on a warm run reports the full replay.
	stats, code := runXgcc(t, dir, "-checker", "free,null", "-cache", cacheDir, "-stats", buggy)
	if code != 0 || !strings.Contains(stats, "cache: files reparsed=0") {
		t.Errorf("warm -stats did not report a full replay: code %d, %.400s", code, stats)
	}
	// The cache directory persists sharded entries on disk.
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Errorf("cache dir empty after runs: %v", err)
	}
}

func TestBaselineSuppressionAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	buggy := writeSrc(t, dir, "buggy.c", buggySrc)
	baseline := filepath.Join(dir, "baseline.json")

	out1, code := runXgcc(t, dir, "-checker", "free", "-baseline", baseline, buggy)
	if code != 0 || strings.Contains(out1, "0 reports") {
		t.Fatalf("first baseline run: code %d, out %.200s", code, out1)
	}
	// Second run: everything recorded, so everything suppressed.
	out2, code := runXgcc(t, dir, "-checker", "free", "-baseline", baseline, buggy)
	if code != 0 || !strings.Contains(out2, "0 reports") {
		t.Errorf("second baseline run not suppressed: code %d, out %.200s", code, out2)
	}
	// No temp files may survive the atomic rename.
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if strings.Contains(f.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", f.Name())
		}
	}
}

func TestAtomicWriteReplacesAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := atomicWrite(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "new" {
		t.Errorf("read back %q, err %v", data, err)
	}
	files, _ := os.ReadDir(dir)
	if len(files) != 1 {
		t.Errorf("%d files left in dir, want 1", len(files))
	}
}
