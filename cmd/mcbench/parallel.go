package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/profiling"
	"repro/internal/workload"
	"repro/mc"
)

// expPar measures the engine-parallelism tentpole: wall-clock for the
// full bundled checker suite over the E11 seeded tree at increasing -j,
// verifying that every level produces byte-identical ranked output. The
// series lands in BENCH_parallel.json so CI can track scaling.

type parRun struct {
	Jobs      int     `json:"jobs"`
	Seconds   float64 `json:"seconds"`
	Speedup   float64 `json:"speedup,omitempty"`
	Output    string  `json:"output_sha256"`
	Identical bool    `json:"identical_to_j1"`
}

type parBench struct {
	Experiment string              `json:"experiment"`
	Workload   string              `json:"workload"`
	Host       profiling.HostFacts `json:"host"`
	// Constrained is set when the host has a single usable core:
	// every -j level then runs the same serial schedule, so speedup
	// ratios are scheduler noise and are omitted from the runs.
	Constrained bool     `json:"constrained_host,omitempty"`
	Runs        []parRun `json:"runs"`
	// PeakRSSBytes is the process's high-water resident set when the
	// series finished (cumulative over every run in this process).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// suiteAnalyze runs the full bundled suite over srcs at the given
// parallelism and engine options (nil means the analyzer default) and
// returns the elapsed wall clock, the heap allocation count
// (runtime.MemStats.Mallocs delta, single-run cost of the whole
// analysis), and a digest of the complete ranked, why-traced output
// (what a user would diff).
func suiteAnalyze(srcs map[string]string, jobs int, opts *mc.Options) (time.Duration, uint64, string) {
	a := mc.NewAnalyzer()
	if err := a.Configure(mc.RunConfig{Jobs: jobs, Options: opts}); err != nil {
		die(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, s := range mc.BundledCheckers() {
		if err := a.LoadBundledChecker(s.Name); err != nil {
			die(err)
		}
	}
	a.MarkFunction("net_wait", "blocking")
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := a.RunContext(context.Background())
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		die(err)
	}
	var sb strings.Builder
	for _, r := range res.Ranked() {
		sb.WriteString(r.Detailed())
	}
	for _, g := range res.Grouped() {
		fmt.Fprintf(&sb, "%s %.3f %d\n", g.Rule, g.Z, len(g.Reports))
	}
	return elapsed, after.Mallocs - before.Mallocs, fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

// parAnalyze keeps expPar's original shape: default options, wall
// clock plus output digest.
func parAnalyze(srcs map[string]string, jobs int) (time.Duration, string) {
	elapsed, _, digest := suiteAnalyze(srcs, jobs, nil)
	return elapsed, digest
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "mcbench:", err)
	os.Exit(1)
}

func expPar() {
	srcs, _ := workload.MixedTree(4, 25, 2002)
	sweep := []int{1, 2, 4, 8}
	if jobsFlag > 0 {
		found := false
		for _, j := range sweep {
			if j == jobsFlag {
				found = true
			}
		}
		if !found {
			sweep = append(sweep, jobsFlag)
		}
	}

	bench := parBench{
		Experiment:  "parallel-scaling",
		Workload:    "MixedTree(4,25,2002), full bundled checker suite",
		Host:        profiling.Host(),
		Constrained: runtime.NumCPU() == 1 || runtime.GOMAXPROCS(0) == 1,
	}
	var baseSec float64
	var baseDigest string
	fmt.Printf("cores: %d (GOMAXPROCS %d)\n", bench.Host.NumCPU, bench.Host.GOMAXPROCS)
	if bench.Constrained {
		fmt.Println("single-core host: all -j levels run serially; speedups omitted")
	}
	fmt.Println("jobs   seconds   speedup  identical")
	for _, j := range sweep {
		// Best of three trials to damp scheduler noise.
		best, digest := parAnalyze(srcs, j)
		for t := 0; t < 2; t++ {
			d, dig := parAnalyze(srcs, j)
			if dig != digest {
				die(fmt.Errorf("-j %d: output varied across trials", j))
			}
			if d < best {
				best = d
			}
		}
		sec := best.Seconds()
		if j == sweep[0] {
			baseSec, baseDigest = sec, digest
		}
		run := parRun{
			Jobs:      j,
			Seconds:   sec,
			Output:    digest,
			Identical: digest == baseDigest,
		}
		speedup := "      --"
		if !bench.Constrained {
			run.Speedup = baseSec / sec
			speedup = fmt.Sprintf("%7.2fx", run.Speedup)
		}
		bench.Runs = append(bench.Runs, run)
		fmt.Printf("%4d  %8.3f  %s  %v\n", j, run.Seconds, speedup, run.Identical)
	}
	for _, r := range bench.Runs {
		if !r.Identical {
			die(fmt.Errorf("-j %d output differs from -j 1 — determinism broken", r.Jobs))
		}
	}
	bench.PeakRSSBytes = profiling.PeakRSS()
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_parallel.json")
}
