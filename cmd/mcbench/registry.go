package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/profiling"
	"repro/internal/server"
	"repro/internal/workload"
)

// expRegistry measures the checker-platform tentpole (DESIGN.md §14)
// end to end over HTTP: how much the first analyze after enabling a
// new checker version costs versus a steady-state warm analyze
// (hot-reload latency — the price of extending the active set without
// a restart), and how many machine-written checkers per second the
// admission harness can validate through /v1/checkers. The series
// lands in BENCH_registry.json. Structural violations (a reload that
// does not take effect, an admission the harness gets wrong) kill the
// run; timing is reported, not bounded, because the validation corpus
// dominates and virtualized hosts drift.

type registryBench struct {
	Experiment string              `json:"experiment"`
	Workload   string              `json:"workload"`
	Host       profiling.HostFacts `json:"host"`
	// Hot-reload: steady-state warm analyze vs the first analyze after
	// an enable flipped the active checker set.
	WarmAnalyzeSeconds   float64 `json:"warm_analyze_seconds"`
	ReloadAnalyzeSeconds float64 `json:"reload_analyze_seconds"`
	ReloadLatencySeconds float64 `json:"reload_latency_seconds"`
	Reloads              int64   `json:"reloads"`
	// Admission: upload+validate+verdict round-trips through the
	// harness, including the one hostile checker that must reject.
	Admissions          int     `json:"admissions"`
	Admitted            int     `json:"admitted"`
	Rejected            int     `json:"rejected"`
	AdmissionSeconds    float64 `json:"admission_seconds"`
	AdmissionsPerSecond float64 `json:"admissions_per_second"`
	PeakRSSBytes        int64   `json:"peak_rss_bytes"`
}

func regPost(ts *httptest.Server, path string, body interface{}) (int, []byte) {
	var raw []byte
	if body != nil {
		raw, _ = json.Marshal(body)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// reloadCheckerVersion generates version v of one checker name: same
// state machine, distinct message, so each upload is a new
// content-addressed version and each enable supersedes the previous.
func reloadCheckerVersion(v int) string {
	return fmt.Sprintf(`
sm reload_checker;
state decl any_pointer p;

start:
    { kfree(p) } ==> p.freed
;

p.freed:
    { *p } ==> p.stop, { err("reload probe v%d: use after free"); }
;
`, v)
}

// admissionProbe generates the i-th well-formed candidate for the
// throughput series: each parses and runs clean (reporting nothing on
// the corpus), so the harness must admit all of them.
func admissionProbe(i int) string {
	return fmt.Sprintf(`
sm gen_%d_checker;

start:
    { bench_probe_fn_%d() } ==> start, { err("probe %d fired"); }
;
`, i, i, i)
}

const hostileProbe = `
sm hostile_probe_checker;
decl any_fn_call fn;
decl any_arguments args;

start:
    { fn(args) } ==> start, { err("everything is suspicious"); }
;
`

func expRegistry() {
	srcs, _ := workload.MixedTree(3, 12, 2002)
	srv := server.New(server.Config{Checkers: []string{"free", "lock", "null"}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	analyze := func(files map[string]string) (time.Duration, server.AnalyzeResponse) {
		req := server.AnalyzeRequest{Files: files}
		start := time.Now()
		code, body := regPost(ts, "/v1/analyze", req)
		elapsed := time.Since(start)
		if code != http.StatusOK {
			die(fmt.Errorf("analyze: status %d: %s", code, body))
		}
		var out server.AnalyzeResponse
		if err := json.Unmarshal(body, &out); err != nil {
			die(err)
		}
		return elapsed, out
	}

	// Seed the resident tree, then settle into the warm steady state.
	if _, res := analyze(srcs); res.Reports == 0 {
		die(fmt.Errorf("bundled checkers silent on the bench tree"))
	}
	const warmRuns = 6
	var warm time.Duration
	for i := 0; i < warmRuns; i++ {
		d, _ := analyze(nil)
		warm += d
	}
	warm /= warmRuns

	// Hot-reload rounds: each round admits a new version of one checker
	// and times the analyze that first runs it. The enable supersedes
	// the previous version, so the active set size stays constant and
	// rounds are comparable.
	const reloadRounds = 6
	var reload time.Duration
	for round := 1; round <= reloadRounds; round++ {
		code, body := regPost(ts, "/v1/checkers", server.UploadRequest{Source: reloadCheckerVersion(round)})
		if code != http.StatusCreated {
			die(fmt.Errorf("upload round %d: status %d: %s", round, code, body))
		}
		var e server.CheckerJSON
		json.Unmarshal(body, &e)
		if code, body = regPost(ts, "/v1/checkers/"+e.ID+"/validate", nil); code != http.StatusOK {
			die(fmt.Errorf("validate round %d: status %d: %s", round, code, body))
		}
		if code, body = regPost(ts, "/v1/checkers/"+e.ID+"/enable", nil); code != http.StatusOK {
			die(fmt.Errorf("enable round %d: status %d: %s", round, code, body))
		}
		d, res := analyze(nil)
		reload += d
		found := false
		for _, r := range res.Ranked {
			if r.Checker == "reload_checker" {
				found = true
				break
			}
		}
		if !found {
			die(fmt.Errorf("round %d: enabled checker not live on the next analyze", round))
		}
	}
	reload /= reloadRounds

	// Admission throughput: a batch of clean candidates plus one
	// hostile over-reporter, full upload → validate → verdict per
	// candidate. Note the reload rounds above already validated
	// reloadRounds candidates; this series is measured separately.
	const probes = 12
	admitted, rejected := 0, 0
	admStart := time.Now()
	for i := 0; i <= probes; i++ {
		src := admissionProbe(i)
		if i == probes {
			src = hostileProbe
		}
		code, body := regPost(ts, "/v1/checkers", server.UploadRequest{Source: src})
		if code != http.StatusCreated {
			die(fmt.Errorf("admission upload %d: status %d: %s", i, code, body))
		}
		var e server.CheckerJSON
		json.Unmarshal(body, &e)
		code, body = regPost(ts, "/v1/checkers/"+e.ID+"/validate", nil)
		if code != http.StatusOK {
			die(fmt.Errorf("admission validate %d: status %d: %s", i, code, body))
		}
		var verdict struct {
			Status string `json:"status"`
		}
		json.Unmarshal(body, &verdict)
		switch verdict.Status {
		case "admitted":
			admitted++
		case "rejected":
			rejected++
		default:
			die(fmt.Errorf("admission %d: unexpected status %q", i, verdict.Status))
		}
	}
	admElapsed := time.Since(admStart)
	if admitted != probes {
		die(fmt.Errorf("admitted %d of %d clean candidates", admitted, probes))
	}
	if rejected != 1 {
		die(fmt.Errorf("hostile candidate not rejected (rejected=%d)", rejected))
	}

	// The daemon's own reload counter must agree with the rounds.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		die(err)
	}
	var st server.StatsResponse
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.CheckerReloads != reloadRounds {
		die(fmt.Errorf("checker_reloads = %d, want %d", st.CheckerReloads, reloadRounds))
	}

	bench := registryBench{
		Experiment:           "registry-platform",
		Workload:             "MixedTree(3,12,2002) resident tree; free,lock,null bundled + uploaded reload_checker versions; harness corpus scale 4",
		Host:                 profiling.Host(),
		WarmAnalyzeSeconds:   warm.Seconds(),
		ReloadAnalyzeSeconds: reload.Seconds(),
		ReloadLatencySeconds: reload.Seconds() - warm.Seconds(),
		Reloads:              st.CheckerReloads,
		Admissions:           probes + 1,
		Admitted:             admitted,
		Rejected:             rejected,
		AdmissionSeconds:     admElapsed.Seconds(),
		AdmissionsPerSecond:  float64(probes+1) / admElapsed.Seconds(),
		PeakRSSBytes:         profiling.PeakRSS(),
	}
	fmt.Printf("warm analyze:          %8.4fs\n", bench.WarmAnalyzeSeconds)
	fmt.Printf("post-enable analyze:   %8.4fs (hot-reload latency %+.4fs)\n",
		bench.ReloadAnalyzeSeconds, bench.ReloadLatencySeconds)
	fmt.Printf("admissions: %d (%d admitted, %d rejected) in %.3fs = %.1f/s\n",
		bench.Admissions, admitted, rejected, bench.AdmissionSeconds, bench.AdmissionsPerSecond)
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_registry.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_registry.json")
}
