package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/profiling"
	"repro/internal/workload"
	"repro/mc"
)

// expGov measures the governance tentpole's overhead: the same E11
// workload run through a plain background-context RunContext versus
// RunContext with a cancellable context plus generous (never-tripping)
// budgets — the configuration every governed caller pays for even when
// nothing is cut. The acceptance bound is <=5% overhead, and both paths must
// produce byte-identical ranked output (governance that never fires
// must be invisible). The series lands in BENCH_governance.json.

type govBench struct {
	Experiment      string              `json:"experiment"`
	Workload        string              `json:"workload"`
	Host            profiling.HostFacts `json:"host"`
	Trials          int                 `json:"trials"`
	BaselineSeconds float64             `json:"baseline_seconds"`
	GovernedSeconds float64             `json:"governed_seconds"`
	OverheadPct     float64             `json:"overhead_pct"`
	BoundPct        float64             `json:"bound_pct"`
	Identical       bool                `json:"identical_output"`
	// PeakRSSBytes is the process's high-water resident set when the
	// series finished (cumulative over every run in this process).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// govAnalyze runs the full bundled suite once; governed selects the
// context-first path with active budgets.
func govAnalyze(srcs map[string]string, governed bool) (time.Duration, string) {
	a := mc.NewAnalyzer()
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, s := range mc.BundledCheckers() {
		if err := a.LoadBundledChecker(s.Name); err != nil {
			die(err)
		}
	}
	a.MarkFunction("net_wait", "blocking")

	var res *mc.Result
	var err error
	start := time.Now()
	if governed {
		// Budgets far above what the workload needs: the run pays the
		// bookkeeping (step counters, amortized deadline polls) but
		// never degrades.
		if cerr := a.Configure(mc.RunConfig{Budgets: mc.Budgets{
			PathSteps:  1 << 40,
			FuncBlocks: 1 << 40,
			FuncTime:   time.Hour,
		}}); cerr != nil {
			die(cerr)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		res, err = a.RunContext(ctx)
	} else {
		res, err = a.RunContext(context.Background())
	}
	elapsed := time.Since(start)
	if err != nil {
		die(err)
	}
	if res.Degraded || len(res.Failures) > 0 {
		die(fmt.Errorf("governed run unexpectedly degraded or failed"))
	}
	var sb strings.Builder
	for _, r := range res.Ranked() {
		sb.WriteString(r.Detailed())
	}
	return elapsed, fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

func expGov() {
	srcs, _ := workload.MixedTree(4, 25, 2002)
	const pairs = 40 // single-run ABBA pairs at ~100ms per run: ~8s of measurement
	const boundPct = 5.0

	// A virtualized single-CPU host drifts through fast/slow phases and
	// suffers occasional multi-hundred-ms stalls, both of which dwarf a
	// ~1% effect; `-exp all` adds allocator debt from earlier
	// experiments on top. So: interleave SINGLE runs of the two
	// variants (alternating which goes first, GC between runs), take
	// the governed/baseline ratio of each adjacent pair — the two
	// halves ran close enough together to share any speed phase — and
	// average the ratios after trimming the top and bottom 20%, which
	// discards the pairs a stall or phase boundary landed in. The first
	// pair is warmup.
	one := func(governed bool, wantDig string) (time.Duration, string) {
		runtime.GC()
		d, got := govAnalyze(srcs, governed)
		if wantDig != "" && got != wantDig {
			die(fmt.Errorf("governed=%v: output varied across runs", governed))
		}
		return d, got
	}
	var baseD, govD time.Duration
	var baseDig, govDig string
	var ratios []float64
	for t := 0; t < pairs; t++ {
		var bd, gd time.Duration
		if t%2 == 0 {
			bd, baseDig = one(false, baseDig)
			gd, govDig = one(true, govDig)
		} else {
			gd, govDig = one(true, govDig)
			bd, baseDig = one(false, baseDig)
		}
		if t == 0 {
			continue // warmup pair: first runs pay compilation of hot paths
		}
		baseD += bd
		govD += gd
		ratios = append(ratios, gd.Seconds()/bd.Seconds())
	}
	sort.Float64s(ratios)
	trim := len(ratios) / 5
	var sum float64
	for _, r := range ratios[trim : len(ratios)-trim] {
		sum += r
	}
	overhead := (sum/float64(len(ratios)-2*trim) - 1) * 100
	baseD /= pairs - 1
	govD /= pairs - 1

	bench := govBench{
		Experiment:      "governance-overhead",
		Workload:        "MixedTree(4,25,2002), full bundled checker suite",
		Host:            profiling.Host(),
		Trials:          pairs - 1,
		BaselineSeconds: baseD.Seconds(),
		GovernedSeconds: govD.Seconds(),
		OverheadPct:     overhead,
		BoundPct:        boundPct,
		Identical:       baseDig == govDig,
		PeakRSSBytes:    profiling.PeakRSS(),
	}
	fmt.Printf("baseline Run():              %8.3fs\n", bench.BaselineSeconds)
	fmt.Printf("governed RunContext+budgets: %8.3fs\n", bench.GovernedSeconds)
	fmt.Printf("overhead: %+.2f%% (bound %.0f%%), identical output: %v\n",
		overhead, boundPct, bench.Identical)
	if !bench.Identical {
		die(fmt.Errorf("governed output differs from baseline — governance is not invisible"))
	}
	if overhead > boundPct {
		die(fmt.Errorf("governance overhead %.2f%% exceeds %.0f%% bound", overhead, boundPct))
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_governance.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_governance.json")
}
