// Command mcbench regenerates every figure and table of the paper (as
// indexed in DESIGN.md §4) plus the quantitative claims from the
// prose. Each experiment prints the series the paper reports so
// EXPERIMENTS.md can record paper-vs-measured.
//
// Usage:
//
//	mcbench -exp all
//	mcbench -exp f4,e1,e5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cc"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/metal"
	"repro/internal/pattern"
	"repro/internal/profiling"
	"repro/internal/prog"
	"repro/internal/rank"
	"repro/internal/report"
	"repro/internal/workload"
	"repro/mc"
)

var experiments = []struct {
	id   string
	desc string
	run  func()
}{
	{"f1", "Figure 1: the free checker, parsed and summarized", expF1},
	{"f2", "Figure 2 + §2.2: the 12-step free-checker trace", expF2},
	{"f3", "Figure 3: the lock checker's three error kinds", expF3},
	{"f4", "Figure 4: DFS caching — exponential vs linear", expF4},
	{"f5", "Figure 5: supergraph block/suffix summaries", expF5},
	{"f6", "Figure 6: relax / suffix-summary fixpoint", expF6},
	{"t1", "Table 1: hole types match/reject matrix", expT1},
	{"t2", "Table 2: refine/restore rules", expT2},
	{"e1", "§5.2: linear scaling in tracked instances", expE1},
	{"e2", "§6.2: function-summary memoization", expE2},
	{"e3", "§8: false path pruning vs false positives", expE3},
	{"e4", "§8: synonyms — coverage and FP suppression", expE4},
	{"e5", "§9: statistical z-ranking of rules", expE5},
	{"e6", "§9: generic ranking criteria", expE6},
	{"e7", "§10.2: annotation overhead vs checker cost", expE7},
	{"e8", "§6: emitted-AST size ratio (pass 1)", expE8},
	{"e9", "§1: checkers are 10-200 lines", expE9},
	{"e10", "§8: kill-on-redefinition vs false positives", expE10},
	{"e11", "end-to-end: full checker suite precision/recall on a seeded tree", expE11},
	{"e12", "§8 history: cross-version suppression isolates new bugs", expE12},
	{"par", "engine parallelism: wall-clock vs -j on the E11 workload (writes BENCH_parallel.json)", expPar},
	{"hotpath", "hot-path ablation: memoized matching + block pre-filters vs unoptimized engine (writes BENCH_hotpath.json)", expHotpath},
	{"incr", "incremental replay: warm-vs-cold live analyses per edit on the E11 workload (writes BENCH_incremental.json)", expIncr},
	{"gov", "governance overhead: plain vs budgeted RunContext on the E11 workload (writes BENCH_governance.json)", expGov},
	{"multicheck", "multi-checker dispatch: 5/50/200-checker suites, compiled dispatch on/off (writes BENCH_multicheck.json)", expMulticheck},
	{"scale", "memory-bounded streaming: KLoC/min and peak RSS at 4 tree sizes, spill on/off (writes BENCH_scale.json)", expScale},
	{"feas", "feasibility verdicts: infeasible-kill and false-kill rates, verdict latency on a seeded population (writes BENCH_feas.json)", expFeas},
	{"registry", "checker platform: hot-reload latency and admission throughput over /v1/checkers (writes BENCH_registry.json)", expRegistry},
	{"fleet", "scale-out fleet: worker sharding byte-identity, shared-CAS reuse, analyze coalescing (writes BENCH_fleet.json)", expFleet},
}

// jobsFlag is the -j value; expPar adds it to its sweep, and 0 means
// sweep the defaults only.
var jobsFlag int

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	flag.IntVar(&jobsFlag, "j", 0, "extra worker count for the par experiment's sweep (0 = defaults 1,2,4,8)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write an allocation (heap) profile to this file on exit")
	flag.Parse()

	// Hidden re-exec entry: the scale experiment runs each measurement
	// in a child process so peak RSS (a process-lifetime high-water
	// mark) is per-cell, not cumulative.
	if *scaleCellFlag != "" {
		runScaleCell(*scaleCellFlag)
		return
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcbench:", err)
		os.Exit(2)
	}
	defer stopProf()

	want := map[string]bool{}
	if *exp != "all" {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && !want[e.id] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", strings.ToUpper(e.id), e.desc)
		e.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		stopProf()
		fmt.Fprintln(os.Stderr, "mcbench: no such experiment (ids: f1-f6, t1, t2, e1-e12, par, hotpath, incr, gov, multicheck, scale, feas, registry, fleet)")
		os.Exit(2)
	}
}

// fig2Src is the paper's Figure 2 with its line numbering.
const fig2Src = `int contrived(int *p, int *w, int x) {
    int *q;

    if(x)
    {
        kfree(w);
        q = p;
        p = 0;
    }
    if(!x)
        return *w;
    return *q;
}
int contrived_caller(int *w, int x, int *p) {
    kfree(p);
    contrived(p, w, x);
    return *w;
}
void kfree(void *p);
`

// fig1Checker is the verbatim Figure 1 checker (the bundled "free"
// checker adds example-counting at end of path, which perturbs the
// exit-block summaries Figure 5 shows).
const fig1Checker = `
sm free_checker;
state decl any_pointer v;

start:
    { kfree(v) } ==> v.freed
;

v.freed:
    { *v }       ==> v.stop, { err("using %s after free!", mc_identifier(v)); }
  | { kfree(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
;
`

func runFig1(srcs map[string]string, opts core.Options) (*core.Engine, *report.Set) {
	c, err := metal.Parse(fig1Checker)
	if err != nil {
		panic(err)
	}
	en := core.NewEngine(mustProg(srcs), c, opts)
	return en, en.Run()
}

func mustProg(srcs map[string]string) *prog.Program {
	p, err := prog.BuildSource(srcs)
	if err != nil {
		panic(err)
	}
	return p
}

func mustChecker(name string) *metal.Checker {
	c, err := checkers.Parse(name)
	if err != nil {
		panic(err)
	}
	return c
}

func runEngine(srcs map[string]string, checkerName string, opts core.Options) (*core.Engine, *report.Set) {
	en := core.NewEngine(mustProg(srcs), mustChecker(checkerName), opts)
	return en, en.Run()
}

func expF1() {
	c := mustChecker("free")
	fmt.Printf("checker %s: %d transitions, states: global %v, v %v\n",
		c.Name, len(c.Transitions), c.GlobalStates, c.VarStates["v"])
	fmt.Println(strings.TrimSpace(checkers.Free))
}

func expF2() {
	en, rs := runFig1(map[string]string{"fig2.c": fig2Src}, core.DefaultOptions())
	fmt.Println("reports (paper: lines 12 and 17, nothing else):")
	for _, r := range rs.Reports {
		fmt.Printf("  %s\n", r)
		for _, step := range r.Trace {
			fmt.Printf("      %s\n", step)
		}
	}
	fmt.Printf("paths pruned by FPP (paper trace steps 8/10): %d\n", en.Stats.PrunedPaths)
}

func expF3() {
	src := `
void lock(int *l); void unlock(int *l); int trylock(int *l);
int m1, m2, m3;
void double_acquire(void) { lock(&m1); lock(&m1); }
void release_unacquired(void) { unlock(&m2); }
void never_released(int x) { lock(&m3); if (x) unlock(&m3); }
`
	_, rs := runEngine(map[string]string{"locks.c": src}, "lock", core.DefaultOptions())
	for _, r := range rs.Reports {
		fmt.Printf("  %s\n", r)
	}
}

func expF4() {
	fmt.Println("n-diamonds  paths(2^n)  blocks(cache ON)  blocks(cache OFF)  time ON      time OFF")
	for _, n := range []int{4, 8, 12, 16} {
		pr := workload.DiamondChain(n)
		srcs := map[string]string{"d.c": pr.Source}

		on := core.DefaultOptions()
		on.FPP = false
		t0 := time.Now()
		enOn, _ := runEngine(srcs, "free", on)
		dOn := time.Since(t0)

		off := on
		off.BlockCache = false
		off.MaxBlocks = 5_000_000
		t1 := time.Now()
		enOff, _ := runEngine(srcs, "free", off)
		dOff := time.Since(t1)

		fmt.Printf("%10d  %10d  %16d  %17d  %-10v  %v\n",
			n, 1<<uint(n), enOn.Stats.Blocks, enOff.Stats.Blocks, dOn.Round(time.Microsecond), dOff.Round(time.Microsecond))
	}
}

func expF5() {
	en, _ := runFig1(map[string]string{"fig2.c": fig2Src}, core.DefaultOptions())
	for _, fn := range []string{"contrived_caller", "contrived"} {
		fmt.Printf("--- %s ---\n", fn)
		fmt.Print(en.SupergraphString(fn))
	}
}

func expF6() {
	en, _ := runFig1(map[string]string{"fig2.c": fig2Src}, core.DefaultOptions())
	entry := en.Prog.Lookup("contrived").Graph.Entry
	fmt.Println("function summary of contrived (= entry block suffix summary):")
	fmt.Printf("  %s\n", en.SuffixSummaryString("contrived", entry))
	fmt.Println("properties: no stop-ending edges, no local-q edges (checked by the test suite)")
}

func expT1() {
	src := `
struct point { int x; };
void sink(void);
int f(int i, float fl, int *p, char *s, struct point pt) {
    sink();
    return 0;
}`
	f, err := cc.ParseFile("t1.c", src)
	if err != nil {
		panic(err)
	}
	env := cc.NewTypeEnv(f)
	fn := f.Funcs()[0]
	tm := env.CheckFunc(fn)

	exprs := map[string]cc.Expr{}
	for _, name := range []string{"i", "fl", "p", "s", "pt"} {
		exprs[name], _ = cc.ParseExprString(name)
	}
	// Give the parsed idents their declared types by matching names.
	types := map[string]*cc.Type{}
	for _, p := range fn.Params {
		types[p.Name] = p.Type
	}
	callExpr, _ := cc.ParseExprString("sink()")

	metas := []pattern.MetaKind{pattern.MetaAnyExpr, pattern.MetaAnyScalar, pattern.MetaAnyPtr, pattern.MetaAnyFnCall}
	fmt.Printf("%-12s", "hole type")
	names := []string{"int i", "float fl", "int *p", "char *s", "struct pt", "sink()"}
	for _, n := range names {
		fmt.Printf("  %-10s", n)
	}
	fmt.Println()
	targets := []cc.Expr{exprs["i"], exprs["fl"], exprs["p"], exprs["s"], exprs["pt"], callExpr}
	fakeTM := cc.TypeMap{}
	for name, e := range exprs {
		fakeTM[e] = types[name]
	}
	fakeTM[callExpr] = cc.TypeVoidV
	_ = tm
	for _, m := range metas {
		fmt.Printf("%-12s", string(m))
		for _, tgt := range targets {
			h := &cc.HoleExpr{Name: "h", Meta: string(m)}
			ctx := &pattern.Ctx{Point: tgt, Types: fakeTM, Callouts: pattern.Builtins()}
			b, _ := pattern.CompileBase("h", map[string]*pattern.Hole{"h": {Name: "h", Meta: m}})
			_, ok := b.Match(ctx, pattern.Bindings{})
			_ = h
			mark := "-"
			if ok {
				mark = "match"
			}
			fmt.Printf("  %-10s", mark)
		}
		fmt.Println()
	}
	// Concrete C type hole: int.
	fmt.Printf("%-12s", "int")
	for _, tgt := range targets {
		b, _ := pattern.CompileBase("h", map[string]*pattern.Hole{"h": {Name: "h", CType: cc.TypeIntV}})
		ctx := &pattern.Ctx{Point: tgt, Types: fakeTM, Callouts: pattern.Builtins()}
		_, ok := b.Match(ctx, pattern.Bindings{})
		mark := "-"
		if ok {
			mark = "match"
		}
		fmt.Printf("  %-10s", mark)
	}
	fmt.Println()
	// any_arguments binds whole argument lists inside calls.
	argHoles := map[string]*pattern.Hole{"args": {Name: "args", Meta: pattern.MetaAnyArgs}}
	ap, _ := pattern.CompileBase("g(args)", argHoles)
	callTgt, _ := cc.ParseExprString("g(1, x, s)")
	actx := &pattern.Ctx{Point: callTgt, Types: fakeTM, Callouts: pattern.Builtins()}
	if bnd, ok := ap.Match(actx, pattern.Bindings{}); ok {
		fmt.Printf("%-12s  { g(args) } on g(1, x, s) binds args = [%s]\n", "any_arguments", bnd["args"].String())
	}
}

func expT2() {
	rows := []struct {
		name string
		src  string
		want string
	}{
		{"xa/xf state(xa)", `
void kfree(void *p);
void callee(int *xf) { kfree(xf); }
int caller(int *xa) { callee(xa); return *xa; }`, "using xa after free!"},
		{"&xa/xf state(xa)", `
void kfree(void *p);
void callee(int **xf) { kfree(*xf); }
int caller(int *xa) { callee(&xa); return *xa; }`, "using xa after free!"},
		{"xa/xf state(xa.field)", `
void kfree(void *p);
struct box { int *ptr; };
void callee(struct box xf) { kfree(xf.ptr); }
int caller(struct box xa) { callee(xa); return *xa.ptr; }`, "using xa.ptr after free!"},
		{"xa/xf state(xa->field)", `
void kfree(void *p);
struct box { int *ptr; };
void callee(struct box *xf) { kfree(xf->ptr); }
int caller(struct box *xa) { callee(xa); return *xa->ptr; }`, "using xa->ptr after free!"},
		{"xa/xf state(*xa)", `
void kfree(void *p);
void callee(int **xf) { kfree(*xf); }
int caller(int **xa) { callee(xa); return **xa; }`, "using *xa after free!"},
	}
	for _, row := range rows {
		_, rs := runEngine(map[string]string{"t2.c": row.src}, "free", core.DefaultOptions())
		status := "FAIL"
		for _, r := range rs.Reports {
			if strings.Contains(r.Msg, row.want) {
				status = "ok"
			}
		}
		fmt.Printf("  %-26s -> %s (%d reports)\n", row.name, status, rs.Len())
	}
}

func expE1() {
	fmt.Println("instances  points-visited  blocks  paths  time")
	base := int64(0)
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64} {
		pr := workload.InstanceScaling(k, 8)
		t0 := time.Now()
		en, _ := runEngine(map[string]string{"s.c": pr.Source}, "free", core.DefaultOptions())
		d := time.Since(t0)
		if k == 1 {
			base = en.Stats.Points
		}
		fmt.Printf("%9d  %14d  %6d  %5d  %v\n", k, en.Stats.Points, en.Stats.Blocks, en.Stats.Paths, d.Round(time.Microsecond))
		_ = base
	}
	fmt.Println("(§5.2: independence makes point visits scale linearly, not exponentially)")
}

func expE2() {
	fmt.Println("callsites  callee-analyses(cache ON)  callee-analyses(cache OFF)  fn-cache-hits")
	for _, m := range []int{4, 16, 64} {
		pr := workload.CallsiteFanout(m)
		srcs := map[string]string{"c.c": pr.Source}
		on, _ := runEngine(srcs, "free", core.DefaultOptions())
		off := core.DefaultOptions()
		off.FunctionCache = false
		enOff, _ := runEngine(srcs, "free", off)
		fmt.Printf("%9d  %25d  %26d  %13d\n",
			m, on.Analyses("helper"), enOff.Analyses("helper"), on.Stats.FuncCacheHits)
	}
}

func expE3() {
	pr := workload.ContradictoryBranches(100, 0.2, 42)
	srcs := map[string]string{"x.c": pr.Source}
	on, rsOn := runEngine(srcs, "free", core.DefaultOptions())
	off := core.DefaultOptions()
	off.FPP = false
	_, rsOff := runEngine(srcs, "free", off)

	truth := map[string]bool{}
	for _, b := range pr.Bugs {
		truth[b.Func] = true
	}
	score := func(rs *report.Set) (tp, fp int) {
		for _, r := range rs.Reports {
			if truth[r.Func] {
				tp++
			} else {
				fp++
			}
		}
		return
	}
	tpOn, fpOn := score(rsOn)
	tpOff, fpOff := score(rsOff)
	fmt.Printf("seeded real bugs: %d over 100 functions\n", len(pr.Bugs))
	fmt.Printf("FPP ON : %3d true positives, %3d false positives (paths pruned: %d)\n", tpOn, fpOn, on.Stats.PrunedPaths)
	fmt.Printf("FPP OFF: %3d true positives, %3d false positives\n", tpOff, fpOff)
}

func expE4() {
	src := `
void *kmalloc(unsigned long n);
void kfree(void *p);
int chain(int n) {
    int *p, *q, *r;
    p = kmalloc(n);
    kfree(p);
    q = p;
    r = q;
    return *r;
}`
	srcs := map[string]string{"syn.c": src}
	_, rsOn := runEngine(srcs, "free", core.DefaultOptions())
	off := core.DefaultOptions()
	off.Synonyms = false
	_, rsOff := runEngine(srcs, "free", off)
	fmt.Printf("kfree(p); q = p; r = q; use *r (synonym chain):\n")
	fmt.Printf("  synonyms ON : %d reports (mirrored state catches the use)\n", rsOn.Len())
	fmt.Printf("  synonyms OFF: %d reports (bug missed)\n", rsOff.Len())

	// The kmalloc NULL-check mirroring example from §8.
	nullSrc := `
void *kmalloc(unsigned long n);
int f(unsigned long n) {
    int *p, *q;
    p = q = kmalloc(n);
    if (!p)
        return 0;
    return *q;
}`
	_, nullOn := runEngine(map[string]string{"n.c": nullSrc}, "null", core.DefaultOptions())
	offN := core.DefaultOptions()
	offN.Synonyms = false
	_, nullOff := runEngine(map[string]string{"n.c": nullSrc}, "null", offN)
	fmt.Printf("p = q = kmalloc(...); if(!p) ...; *q (paper's §8 example):\n")
	fmt.Printf("  synonyms ON : %d false positives (check on p clears q)\n", nullOn.Len())
	fmt.Printf("  synonyms OFF: %d false positives\n", nullOff.Len())
}

func expE5() {
	pr := workload.LockReliability(60, 4, 30)
	p := mustProg(map[string]string{"lk.c": pr.Source})
	en := core.NewEngine(p, mustChecker("lock"), core.DefaultOptions())
	rs := en.Run()

	stats := map[string]rank.RuleStat{}
	for rule, rc := range en.RuleStats {
		stats[rule] = rank.RuleStat{Rule: rule, Examples: rc.Examples, Violations: rc.Violations}
	}
	truth := map[string]bool{}
	for _, b := range pr.Bugs {
		truth[b.Func] = true
	}
	ranked := rank.Statistical(rs.Reports, stats)
	fmt.Printf("reports: %d, seeded true bugs: %d\n", len(ranked), len(pr.Bugs))
	fmt.Println("rank  func                 true-bug?")
	hitsInTop := 0
	for i, r := range ranked {
		if i < 10 {
			fmt.Printf("%4d  %-20s %v\n", i+1, r.Func, truth[r.Func])
		}
		if i < len(pr.Bugs) && truth[r.Func] {
			hitsInTop++
		}
	}
	fmt.Printf("true bugs in top-%d: %d (paper: 'all of the real errors went to the top')\n",
		len(pr.Bugs), hitsInTop)

	// Code ranking (§9 "Ranking code"): per-function e/c under the
	// *intraprocedural* lock checker — wrapper functions (acquire-only
	// or release-only by design) sink; mostly-balanced functions with
	// a few mismatches rise.
	intra := core.DefaultOptions()
	intra.Interprocedural = false
	var codeStats []rank.CodeStat
	for _, fn := range p.All {
		enF := core.NewEngine(p, mustChecker("lock"), intra)
		enF.RunFunction(fn.Name)
		cs := rank.CodeStat{Function: fn.Name}
		for _, rc := range enF.RuleStats {
			cs.Successes += rc.Examples
			cs.Mismatches += rc.Violations
		}
		if cs.Successes+cs.Mismatches > 0 {
			codeStats = append(codeStats, cs)
		}
	}
	rankedCode := rank.RankCode(codeStats)
	fmt.Println("\ncode ranking (intraprocedural lock checker):")
	show := func(cs rank.CodeStat) {
		fmt.Printf("  %-20s e=%d c=%d z=%.2f\n", cs.Function, cs.Successes, cs.Mismatches, cs.Z())
	}
	for i, cs := range rankedCode {
		if i < 3 {
			show(cs)
		}
	}
	fmt.Println("  ...")
	for i, cs := range rankedCode {
		if i >= len(rankedCode)-3 {
			show(cs)
		}
	}

	// Rule inference on the paired-calls population.
	pp := workload.PairedCalls(40, 3, 20, 9)
	p2 := mustProg(map[string]string{"pp.c": pp.Source})
	pairs := checkers.InferPairs(p2, func(n string) bool {
		return strings.HasPrefix(n, "res_") || strings.HasPrefix(n, "misc_")
	})
	fmt.Println("\ninferred must-pair rules (top 5 by z):")
	fmt.Print(checkers.FormatPairs(pairs, 5))
}

func expE6() {
	mk := func(line, start, conds, syn int, inter bool, chain int, class report.Class, label string) *report.Report {
		return &report.Report{
			Checker: "demo", Msg: label,
			Pos:          cc.Pos{File: "f.c", Line: line},
			Start:        cc.Pos{File: "f.c", Line: start},
			Conditionals: conds, SynonymDepth: syn,
			Interprocedural: inter, CallChain: chain, Class: class,
		}
	}
	reports := []*report.Report{
		mk(500, 10, 8, 2, true, 5, report.ClassNone, "far, conditional-heavy, synonym, interprocedural"),
		mk(12, 10, 0, 0, false, 0, report.ClassNone, "near, simple, local"),
		mk(40, 10, 1, 0, false, 0, report.ClassNone, "medium local"),
		mk(11, 10, 0, 0, false, 0, report.ClassMinor, "trivial but MINOR"),
		mk(300, 10, 4, 0, true, 2, report.ClassSecurity, "SECURITY interprocedural"),
	}
	for i, r := range rank.Generic(reports) {
		fmt.Printf("%d. [%s] %s (score=%d)\n", i+1, orNone(string(r.Class)), r.Msg, r.Score())
		_ = i
	}
}

func orNone(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func expE7() {
	fmt.Println("code size   metal cost (fixed, lines)   annotation cost @1/50 LoC (lines to write)")
	freeLines := checkers.LineCount()["free"]
	for _, loc := range []int{1000, 10000, 100000, 2000000} {
		fmt.Printf("%9d   %25d   %40d\n", loc, freeLines, loc/50)
	}
	fmt.Println("(§10.2: 'For a system the size of Linux (2MLOC), this would require two spells")
	fmt.Println(" of 40 days and 40 nights of continuous annotating for a single property!')")
}

func expE8() {
	fmt.Println("workload              source-bytes  emitted-bytes  ratio (paper: 4-5x)")
	srcs := workload.LinuxLike(3, 20, 7)
	var names []string
	for n := range srcs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		emitted, err := mc.EmitAST(n, srcs[n])
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s  %12d  %13d  %.2fx\n", n, len(srcs[n]), len(emitted),
			float64(len(emitted))/float64(len(srcs[n])))
	}
	fmt.Printf("%-20s  %12d  %13d  %.2fx\n", "fig2.c", len(fig2Src),
		len(mustEmit("fig2.c", fig2Src)), float64(len(mustEmit("fig2.c", fig2Src)))/float64(len(fig2Src)))
}

func mustEmit(name, src string) []byte {
	data, err := mc.EmitAST(name, src)
	if err != nil {
		panic(err)
	}
	return data
}

func expE9() {
	fmt.Println("checker         lines  (paper: 10-200)")
	counts := checkers.LineCount()
	var names []string
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-14s  %5d\n", n, counts[n])
	}
}

func expE11() {
	srcs, bugs := workload.MixedTree(4, 25, 2002)
	p := mustProg(srcs)

	kindToChecker := map[string]string{
		"use-after-free": "free",
		"double-free":    "free",
		"missing-unlock": "lock",
		"null-deref":     "null",
		"leak":           "leak",
		"interrupt":      "interrupt",
	}
	buggyFuncs := map[string]string{}
	for _, b := range bugs {
		buggyFuncs[b.Func] = b.Kind
	}

	fmt.Printf("seeded tree: %d files, %d functions, %d bugs\n", 4, len(p.All), len(bugs))
	fmt.Println("checker     reports  true-pos  false-pos  missed")
	totalTP, totalFP, totalSeeded := 0, 0, 0
	for _, cname := range []string{"free", "lock", "null", "leak", "interrupt"} {
		en := core.NewEngine(p, mustChecker(cname), core.DefaultOptions())
		rs := en.Run()
		tp, fp := 0, 0
		hit := map[string]bool{}
		for _, r := range rs.Reports {
			if kind, isBuggy := buggyFuncs[r.Func]; isBuggy && kindToChecker[kind] == cname {
				tp++
				hit[r.Func] = true
			} else {
				fp++
			}
		}
		seeded := 0
		for _, b := range bugs {
			if kindToChecker[b.Kind] == cname {
				seeded++
			}
		}
		missed := 0
		for _, b := range bugs {
			if kindToChecker[b.Kind] == cname && !hit[b.Func] {
				missed++
			}
		}
		totalTP += tp
		totalFP += fp
		totalSeeded += seeded
		fmt.Printf("%-10s  %7d  %8d  %9d  %6d\n", cname, rs.Len(), tp, fp, missed)
	}
	fmt.Printf("suite total: %d/%d seeded bugs found, %d false positives\n",
		totalTP, totalSeeded, totalFP)
}

func expE12() {
	v1, bugs := workload.MixedTree(3, 20, 99)
	run := func(srcs map[string]string, history []*report.Report) []*report.Report {
		p := mustProg(srcs)
		var all []*report.Report
		for _, cname := range []string{"free", "lock", "null", "leak", "interrupt"} {
			en := core.NewEngine(p, mustChecker(cname), core.DefaultOptions())
			all = append(all, en.Run().Reports...)
		}
		if history != nil {
			all = report.NewHistory(history).Suppress(all)
		}
		return all
	}
	first := run(v1, nil)
	fmt.Printf("v1: %d reports over %d seeded bugs — triaged and recorded as the baseline\n",
		len(first), len(bugs))

	v2, newBug := workload.NextVersion(v1)
	unsuppressed := run(v2, nil)
	suppressed := run(v2, first)
	fmt.Printf("v2 (all lines shifted + 1 new bug):\n")
	fmt.Printf("  without history: %d reports (every known issue resurfaces)\n", len(unsuppressed))
	fmt.Printf("  with history:    %d report(s):\n", len(suppressed))
	for _, r := range suppressed {
		fmt.Printf("    %s (func %s)\n", r, r.Func)
	}
	if len(suppressed) == 1 && suppressed[0].Func == newBug.Func {
		fmt.Println("  -> exactly the new regression; line-number drift did not resurrect old reports")
	}
}

func expE10() {
	src := `
void kfree(void *p);
int reuse_after_kill(int *p, int n) {
    kfree(p);
    p = 0;
    p = &n;
    return *p;
}
int idx_kill(int **a, int i) {
    kfree(a[i]);
    i = i + 1;
    return *a[i];
}`
	srcs := map[string]string{"k.c": src}
	_, rsOn := runEngine(srcs, "free", core.DefaultOptions())
	off := core.DefaultOptions()
	off.Kills = false
	_, rsOff := runEngine(srcs, "free", off)
	fmt.Printf("kill-on-redefinition ON : %d false positives\n", rsOn.Len())
	fmt.Printf("kill-on-redefinition OFF: %d false positives\n", rsOff.Len())
	fmt.Println("(§8: killing 'is the single most important technique for suppressing")
	fmt.Println(" false positives in checkers that attach state to specific program objects')")
}
