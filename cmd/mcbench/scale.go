package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/profiling"
	"repro/internal/workload"
	"repro/mc"
)

// expScale measures the memory-bounding tentpole (DESIGN.md §12):
// MixedTree workloads at four sizes, each analyzed with the full
// bundled suite in three streaming configurations (-j 1, -j 8, and
// through a cold incremental cache) against an unbounded in-memory
// reference. Every cell must produce the reference's byte-identical
// ranked output; with spill on, a 4x larger tree must stay within a
// 2x peak-RSS growth (the Go runtime and the per-file parse are the
// residual linear terms). Peak RSS is the kernel's VmHWM — a
// process-lifetime high-water mark — so every cell runs in a child
// process (mcbench re-execs itself with the hidden -scale-cell flag)
// and reports its own RSS. The series lands in BENCH_scale.json.

// scaleCellFlag and scaleShortFlag are registered at package level so
// main's flag.Parse picks them up alongside its own flags.
var (
	scaleCellFlag  = flag.String("scale-cell", "", "internal: run one scale measurement cell (JSON spec) and emit JSON on stdout")
	scaleShortFlag = flag.Bool("scale-short", false, "scale experiment: two tree sizes and no RSS-ratio assertion (CI mode)")
)

// scaleMaxResidentMB is the memory budget handed to every spill-on
// cell; small enough that the summary LRU stays far below the tree's
// total summary volume at the larger sizes.
const scaleMaxResidentMB = 64

type scaleCellSpec struct {
	Files  int   `json:"files"`
	Funcs  int   `json:"funcs"`
	Seed   int64 `json:"seed"`
	Jobs   int   `json:"jobs"`
	Spill  bool  `json:"spill"`
	Cached bool  `json:"cached"`
}

type scaleCellResult struct {
	Seconds      float64 `json:"seconds"`
	Lines        int     `json:"lines"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	Evictions    int64   `json:"evictions"`
	Reloads      int64   `json:"reloads"`
	SpillPuts    int64   `json:"spill_puts"`
	SpillBytes   int64   `json:"spill_bytes"`
	ASTsReleased int64   `json:"asts_released"`
	Output       string  `json:"output_sha256"`
}

// runScaleCell is the child side: one full-suite analysis in a fresh
// process, result JSON on stdout.
func runScaleCell(spec string) {
	var c scaleCellSpec
	if err := json.Unmarshal([]byte(spec), &c); err != nil {
		die(fmt.Errorf("scale-cell spec: %w", err))
	}
	srcs, _ := workload.MixedTree(c.Files, c.Funcs, c.Seed)
	lines := 0
	for _, src := range srcs {
		lines += strings.Count(src, "\n") + 1
	}

	a := mc.NewAnalyzer()
	cfg := mc.RunConfig{Jobs: c.Jobs}
	if c.Spill {
		cfg.MaxResidentMB = scaleMaxResidentMB
	}
	if c.Cached {
		cfg.CacheStore = cache.NewMemStore()
	}
	if err := a.Configure(cfg); err != nil {
		die(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, s := range mc.BundledCheckers() {
		if err := a.LoadBundledChecker(s.Name); err != nil {
			die(err)
		}
	}
	a.MarkFunction("net_wait", "blocking")

	start := time.Now()
	res, err := a.RunContext(context.Background())
	elapsed := time.Since(start)
	if err != nil {
		die(err)
	}
	var sb strings.Builder
	for _, r := range res.Ranked() {
		sb.WriteString(r.Detailed())
	}
	for _, g := range res.Grouped() {
		fmt.Fprintf(&sb, "%s %.3f %d\n", g.Rule, g.Z, len(g.Reports))
	}

	out := scaleCellResult{
		Seconds:      elapsed.Seconds(),
		Lines:        lines,
		PeakRSSBytes: profiling.PeakRSS(),
		Output:       fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String()))),
	}
	if sp := res.Spill; sp != nil {
		out.Evictions = sp.Evictions
		out.Reloads = sp.Reloads
		out.SpillPuts = sp.SpillPuts
		out.SpillBytes = sp.SpillBytes
		out.ASTsReleased = sp.ASTsReleased
	}
	if err := json.NewEncoder(os.Stdout).Encode(out); err != nil {
		die(err)
	}
}

// scaleCellExec is the parent side: re-exec this binary for one cell.
func scaleCellExec(spec scaleCellSpec) scaleCellResult {
	data, err := json.Marshal(spec)
	if err != nil {
		die(err)
	}
	cmd := exec.Command(os.Args[0], "-scale-cell", string(data))
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		die(fmt.Errorf("scale cell %s: %w", data, err))
	}
	var r scaleCellResult
	if err := json.Unmarshal(out, &r); err != nil {
		die(fmt.Errorf("scale cell %s: bad child output %q: %w", data, out, err))
	}
	return r
}

type scaleRun struct {
	Files        int     `json:"files"`
	Lines        int     `json:"lines"`
	Mode         string  `json:"mode"`
	Jobs         int     `json:"jobs"`
	Spill        bool    `json:"spill"`
	Cached       bool    `json:"cached"`
	Seconds      float64 `json:"seconds"`
	KLoCPerMin   float64 `json:"kloc_per_min"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`
	Evictions    int64   `json:"evictions"`
	Reloads      int64   `json:"reloads"`
	SpillBytes   int64   `json:"spill_bytes"`
	ASTsReleased int64   `json:"asts_released"`
	Output       string  `json:"output_sha256"`
	Identical    bool    `json:"identical_to_reference"`
}

type scaleBench struct {
	Experiment    string              `json:"experiment"`
	Workload      string              `json:"workload"`
	Host          profiling.HostFacts `json:"host"`
	MaxResidentMB int                 `json:"max_resident_mb"`
	Short         bool                `json:"short,omitempty"`
	Runs          []scaleRun          `json:"runs"`
	// RSS growth for a 4x tree (largest size over the size 4x smaller),
	// spill on vs off, at -j 1. The acceptance criterion is
	// RSSRatioSpillOn <= RatioBound; the spill-off ratio is reported
	// for contrast but not asserted (the GC's pacing makes unbounded
	// growth noisy, while the bounded mode must hold its ceiling).
	RSSRatioSpillOn  float64 `json:"rss_ratio_4x_spill_on,omitempty"`
	RSSRatioSpillOff float64 `json:"rss_ratio_4x_spill_off,omitempty"`
	RatioBound       float64 `json:"ratio_bound,omitempty"`
	// WallRatioSpillOnJ1 is the spill-on-j1 wall-clock over the
	// unbounded reference at the largest size — the streaming mode's
	// slowdown factor. Reported, not asserted (timing noise); the
	// packed spill log (internal/spill/log.go) is what keeps it near 1.
	WallRatioSpillOnJ1 float64 `json:"wall_ratio_spill_on_j1,omitempty"`
}

func expScale() {
	sizes := []int{4, 8, 16, 32}
	if *scaleShortFlag {
		sizes = sizes[:2]
	}
	const funcsPerFile = 25
	const seed = 2002
	const ratioBound = 2.0

	bench := scaleBench{
		Experiment:    "scale-streaming",
		Workload:      fmt.Sprintf("MixedTree(N,%d,%d), full bundled checker suite, child process per cell", funcsPerFile, seed),
		Host:          profiling.Host(),
		MaxResidentMB: scaleMaxResidentMB,
		Short:         *scaleShortFlag,
	}

	modes := []struct {
		name   string
		jobs   int
		spill  bool
		cached bool
	}{
		{"spill-off-j1", 1, false, false}, // reference: unbounded, in-memory
		{"spill-on-j1", 1, true, false},
		{"spill-on-j8", 8, true, false},
		{"spill-on-cached-j1", 1, true, true}, // cold incremental cache
	}

	// peak RSS and wall-clock of the -j 1 cells, per size, spill on
	// and off, for the growth and slowdown ratios.
	rssOn := map[int]int64{}
	rssOff := map[int]int64{}
	secOn := map[int]float64{}
	secOff := map[int]float64{}

	fmt.Println("files  mode                 seconds  kloc/min  peak-rss-mb  evictions  reloads  identical")
	for _, n := range sizes {
		var refDigest string
		for _, m := range modes {
			r := scaleCellExec(scaleCellSpec{
				Files: n, Funcs: funcsPerFile, Seed: seed,
				Jobs: m.jobs, Spill: m.spill, Cached: m.cached,
			})
			if m.name == "spill-off-j1" {
				refDigest = r.Output
				rssOff[n] = r.PeakRSSBytes
				secOff[n] = r.Seconds
			}
			if m.name == "spill-on-j1" {
				rssOn[n] = r.PeakRSSBytes
				secOn[n] = r.Seconds
			}
			if m.spill && (r.Evictions == 0 || r.ASTsReleased == 0) {
				die(fmt.Errorf("scale %d files %s: streaming mode did not engage (evictions=%d asts-released=%d)",
					n, m.name, r.Evictions, r.ASTsReleased))
			}
			run := scaleRun{
				Files: n, Lines: r.Lines, Mode: m.name,
				Jobs: m.jobs, Spill: m.spill, Cached: m.cached,
				Seconds:      r.Seconds,
				KLoCPerMin:   float64(r.Lines) / 1000 / (r.Seconds / 60),
				PeakRSSBytes: r.PeakRSSBytes,
				Evictions:    r.Evictions, Reloads: r.Reloads,
				SpillBytes: r.SpillBytes, ASTsReleased: r.ASTsReleased,
				Output:    r.Output,
				Identical: r.Output == refDigest,
			}
			bench.Runs = append(bench.Runs, run)
			fmt.Printf("%5d  %-19s  %7.3f  %8.0f  %11.1f  %9d  %7d  %v\n",
				n, m.name, run.Seconds, run.KLoCPerMin,
				float64(run.PeakRSSBytes)/(1<<20), run.Evictions, run.Reloads, run.Identical)
			if !run.Identical {
				die(fmt.Errorf("scale %d files: %s output differs from the in-memory reference — streaming changed results", n, m.name))
			}
		}
	}

	biggest := sizes[len(sizes)-1]
	if secOff[biggest] > 0 {
		bench.WallRatioSpillOnJ1 = secOn[biggest] / secOff[biggest]
		fmt.Printf("wall-clock at %d files, -j 1: spill on is %.2fx the unbounded reference\n",
			biggest, bench.WallRatioSpillOnJ1)
	}

	if !*scaleShortFlag {
		big, small := sizes[len(sizes)-1], sizes[len(sizes)-3] // 32 vs 8: a 4x tree
		bench.RSSRatioSpillOn = float64(rssOn[big]) / float64(rssOn[small])
		bench.RSSRatioSpillOff = float64(rssOff[big]) / float64(rssOff[small])
		bench.RatioBound = ratioBound
		fmt.Printf("peak-RSS growth for a 4x tree (%d -> %d files): %.2fx with spill on, %.2fx off (bound: <= %.1fx on)\n",
			small, big, bench.RSSRatioSpillOn, bench.RSSRatioSpillOff, ratioBound)
		if bench.RSSRatioSpillOn > ratioBound {
			die(fmt.Errorf("scale: peak RSS grew %.2fx for a 4x tree with spill on (bound %.1fx)",
				bench.RSSRatioSpillOn, ratioBound))
		}
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_scale.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_scale.json")
}
