package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"repro/internal/profiling"
	"repro/internal/workload"
	"repro/mc"
)

// expHotpath measures the hot-path engine optimizations (DESIGN.md
// §10) as an ablation: the full bundled checker suite over the E11
// seeded tree with all four optimizations toggled off ("baseline") vs
// the default engine ("optimized"), at -j 1 and -j 8. The two
// configurations must produce byte-identical ranked output — the
// optimizations are pure strength reductions — and the speedup and
// allocation series land in BENCH_hotpath.json so CI can track them.

type hotRun struct {
	Config  string  `json:"config"` // "baseline" or "optimized"
	Jobs    int     `json:"jobs"`
	Seconds float64 `json:"seconds"` // fastest trial
	Allocs  uint64  `json:"allocs"`  // heap allocations for one whole suite run
	Output  string  `json:"output_sha256"`
}

type hotBench struct {
	Experiment string              `json:"experiment"`
	Workload   string              `json:"workload"`
	Host       profiling.HostFacts `json:"host"`
	Trials     int                 `json:"trials"`
	Runs       []hotRun            `json:"runs"`
	// SpeedupJ1/J8 are the median over paired trials of the
	// baseline/optimized wall-clock ratio at each parallelism level
	// (each trial runs both configs back to back, so host load drift
	// cancels within the pair); AllocReduction is 1 -
	// optimized/baseline allocations at -j 1 (allocation counts are
	// schedule-independent up to pool noise, so one level suffices).
	SpeedupJ1      float64 `json:"speedup_j1"`
	SpeedupJ8      float64 `json:"speedup_j8"`
	AllocReduction float64 `json:"alloc_reduction"`
	Identical      bool    `json:"output_identical"`
	// PeakRSSBytes is the process's high-water resident set when the
	// series finished (cumulative over every run in this process).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// hotTrials is the number of interleaved baseline/optimized trial
// pairs per parallelism level.
const hotTrials = 8

// hotTrial runs the suite cold (fresh analyzer, no persistent cache)
// once. A GC beforehand levels the heap state the trial starts from.
func hotTrial(srcs map[string]string, jobs int, opts *mc.Options) (float64, uint64, string) {
	runtime.GC()
	d, a, dig := suiteAnalyze(srcs, jobs, opts)
	return d.Seconds(), a, dig
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func expHotpath() {
	srcs, _ := workload.MixedTree(4, 25, 2002)

	baseline := mc.DefaultOptions()
	baseline.MatchMemo = false
	baseline.BlockFilter = false
	baseline.TupleIntern = false
	baseline.LeanAlloc = false
	optimized := mc.DefaultOptions()

	bench := hotBench{
		Experiment: "hotpath-ablation",
		Workload:   "MixedTree(4,25,2002), full bundled checker suite",
		Host:       profiling.Host(),
		Trials:     hotTrials,
	}

	speedups := map[int]float64{}
	var allocRed float64
	fmt.Println("config     jobs   seconds      allocs  output")
	for _, j := range []int{1, 8} {
		base := hotRun{Config: "baseline", Jobs: j}
		opt := hotRun{Config: "optimized", Jobs: j}
		var ratios []float64
		for t := 0; t < hotTrials; t++ {
			// One paired trial: baseline then optimized, back to back,
			// so the pair sees the same host conditions and the ratio
			// is meaningful even when the machine is loaded.
			bs, ba, bd := hotTrial(srcs, j, &baseline)
			ts, ta, td := hotTrial(srcs, j, &optimized)
			if t == 0 {
				base.Seconds, base.Allocs, base.Output = bs, ba, bd
				opt.Seconds, opt.Allocs, opt.Output = ts, ta, td
			} else {
				if bd != base.Output || td != opt.Output {
					die(fmt.Errorf("hotpath -j %d: output varied across trials", j))
				}
				if bs < base.Seconds {
					base.Seconds = bs
				}
				if ts < opt.Seconds {
					opt.Seconds = ts
				}
				if ba < base.Allocs {
					base.Allocs = ba
				}
				if ta < opt.Allocs {
					opt.Allocs = ta
				}
			}
			ratios = append(ratios, bs/ts)
		}
		speedups[j] = median(ratios)
		if j == 1 {
			allocRed = 1 - float64(opt.Allocs)/float64(base.Allocs)
		}
		for _, r := range []hotRun{base, opt} {
			bench.Runs = append(bench.Runs, r)
			fmt.Printf("%-9s  %4d  %8.3f  %10d  %s\n", r.Config, r.Jobs, r.Seconds, r.Allocs, r.Output[:12])
		}
	}

	// The optimizations must not perturb output: every run — both
	// configs, both parallelism levels — digests identically.
	ref := bench.Runs[0].Output
	bench.Identical = true
	for _, r := range bench.Runs {
		if r.Output != ref {
			bench.Identical = false
		}
	}
	if !bench.Identical {
		die(fmt.Errorf("hotpath: optimized output differs from baseline — optimization changed results"))
	}

	bench.SpeedupJ1 = speedups[1]
	bench.SpeedupJ8 = speedups[8]
	bench.AllocReduction = allocRed
	bench.PeakRSSBytes = profiling.PeakRSS()

	fmt.Printf("speedup (median of %d paired trials): %.2fx at -j 1, %.2fx at -j 8; allocations: %.1f%% fewer; output identical: %v\n",
		hotTrials, bench.SpeedupJ1, bench.SpeedupJ8, 100*bench.AllocReduction, bench.Identical)

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_hotpath.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_hotpath.json")
}
