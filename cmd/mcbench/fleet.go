package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/profiling"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/mc"
)

// expFleet measures the scale-out tentpole (DESIGN.md §15) with the
// whole fleet in one process: httptest workers filling unit keys
// through the HTTP CAS surface, a coordinator scheduling onto them,
// and the daemon's /v1/analyze request coalescing. Three claims land
// in BENCH_fleet.json:
//
//   - sharding is invisible: a fleet run at every worker count
//     produces the single-process run's byte-identical output;
//   - the shared CAS composes across tenants: a second coordinator
//     over a warm store replays >= 90% of its units and dispatches
//     nothing;
//   - coalescing absorbs identical bursts: K = 8 concurrent identical
//     analyze posts cost one analysis and finish within 1.5x the
//     wall-clock of a single post.

// fleetShortFlag trims the tree and the worker sweep for CI.
var fleetShortFlag = flag.Bool("fleet-short", false, "fleet experiment: smaller tree and worker sweep (CI mode)")

const (
	fleetCoalesceK     = 8
	fleetCoalesceBound = 1.5
	fleetReuseBound    = 0.9
)

type fleetRun struct {
	Workers       int     `json:"workers"`
	Seconds       float64 `json:"seconds"`
	UnitsRemote   int     `json:"units_remote"`
	UnitsReplayed int     `json:"units_replayed"`
	Dispatched    int64   `json:"dispatched"`
	Requeues      int64   `json:"requeues"`
	Output        string  `json:"output_sha256"`
	Identical     bool    `json:"identical_to_single_process"`
}

type fleetBench struct {
	Experiment string              `json:"experiment"`
	Workload   string              `json:"workload"`
	Host       profiling.HostFacts `json:"host"`
	Short      bool                `json:"short,omitempty"`
	// BaselineSeconds is the plain single-process run the fleet rows
	// are diffed against.
	BaselineSeconds float64    `json:"single_process_seconds"`
	Runs            []fleetRun `json:"runs"`
	// Second-tenant warm reuse over the shared CAS: fraction of the
	// run's units replayed from entries the first tenant's workers
	// filled. The acceptance criterion is Reuse >= ReuseBound with
	// zero dispatches.
	SecondTenantReuse      float64 `json:"second_tenant_reuse"`
	SecondTenantDispatched int64   `json:"second_tenant_dispatched"`
	ReuseBound             float64 `json:"reuse_bound"`
	// Request coalescing: K identical concurrent posts against one
	// post, both on cold daemons. The acceptance criterion is
	// Analyses == 1 and CoalesceRatio <= CoalesceBound.
	CoalesceK         int     `json:"coalesce_k"`
	OneAnalyzeSeconds float64 `json:"one_analyze_seconds"`
	KAnalyzeSeconds   float64 `json:"k_analyze_seconds"`
	CoalesceRatio     float64 `json:"coalesce_ratio"`
	CoalesceBound     float64 `json:"coalesce_bound"`
	Analyses          int64   `json:"analyses_for_k_requests"`
	CoalescedAnalyzes int64   `json:"coalesced_analyzes"`
	// PeakRSSBytes is the process's high-water resident set when the
	// series finished (cumulative over every run in this process).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// fleetAnalyze runs the full bundled suite over srcs — with a cache
// store and a coordinator's unit runner when given — and returns the
// result, wall-clock seconds, and the ranked-output digest.
func fleetAnalyze(srcs map[string]string, store cache.Store, runner mc.UnitRunner) (*mc.Result, float64, string) {
	a := mc.NewAnalyzer()
	if err := a.Configure(mc.RunConfig{Jobs: 2, CacheStore: store, UnitRunner: runner}); err != nil {
		die(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, s := range mc.BundledCheckers() {
		if err := a.LoadBundledChecker(s.Name); err != nil {
			die(err)
		}
	}
	a.MarkFunction("net_wait", "blocking")
	start := time.Now()
	res, err := a.RunContext(context.Background())
	elapsed := time.Since(start)
	if err != nil {
		die(err)
	}
	var sb strings.Builder
	for _, r := range res.Ranked() {
		sb.WriteString(r.Detailed())
	}
	for _, g := range res.Grouped() {
		fmt.Fprintf(&sb, "%s %.3f %d\n", g.Rule, g.Z, len(g.Reports))
	}
	return res, elapsed.Seconds(), fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

// fleetWorkers serves the store over the HTTP CAS surface — the wire
// path a deployed worker uses — and starts n workers against it,
// returning their URLs and a shutdown func.
func fleetWorkers(store cache.Store, n int) ([]string, func()) {
	casSrv := httptest.NewServer(cache.NewCASServer(store))
	cas := cache.NewHTTPStore(casSrv.URL, nil)
	urls := make([]string, n)
	servers := []*httptest.Server{casSrv}
	for i := range urls {
		srv := httptest.NewServer(fleet.NewWorker(cas, 2).Handler())
		servers = append(servers, srv)
		urls[i] = srv.URL
	}
	return urls, func() {
		for _, srv := range servers {
			srv.Close()
		}
	}
}

// fleetBurst fires K identical analyze posts at a fresh cold daemon,
// released together, and returns the wall-clock plus the daemon's
// analysis and coalescing counters. All K replies must be the shared
// response byte for byte.
func fleetBurst(body []byte) (sec float64, analyses, coalesced int64) {
	burst := httptest.NewServer(server.New(server.Config{Jobs: 2}).Handler())
	defer burst.Close()
	replies := make([][]byte, fleetCoalesceK)
	start := make(chan struct{})
	var wg sync.WaitGroup
	t0 := time.Now()
	for i := range replies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			replies[i] = fleetPost(burst.URL, body)
		}(i)
	}
	close(start)
	wg.Wait()
	sec = time.Since(t0).Seconds()
	for i := 1; i < len(replies); i++ {
		if !bytes.Equal(replies[i], replies[0]) {
			die(fmt.Errorf("fleet: coalesced reply %d diverged from the shared response", i))
		}
	}
	var st server.StatsResponse
	resp, err := http.Get(burst.URL + "/v1/stats")
	if err != nil {
		die(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		die(err)
	}
	resp.Body.Close()
	return sec, st.Analyses, st.CoalescedAnalyzes
}

// fleetPost posts one analyze request and returns the response body.
func fleetPost(url string, body []byte) []byte {
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		die(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		die(err)
	}
	if resp.StatusCode != http.StatusOK {
		die(fmt.Errorf("analyze: status %d: %s", resp.StatusCode, data))
	}
	return data
}

func expFleet() {
	files, funcs := 4, 25
	sweep := []int{1, 2, 4}
	if *fleetShortFlag {
		files, funcs = 2, 10
		sweep = []int{1, 2}
	}
	srcs, _ := workload.MixedTree(files, funcs, 2002)

	bench := fleetBench{
		Experiment:    "fleet-scale-out",
		Workload:      fmt.Sprintf("MixedTree(%d,%d,2002), full bundled checker suite", files, funcs),
		Host:          profiling.Host(),
		Short:         *fleetShortFlag,
		ReuseBound:    fleetReuseBound,
		CoalesceK:     fleetCoalesceK,
		CoalesceBound: fleetCoalesceBound,
	}

	_, baseSec, baseDigest := fleetAnalyze(srcs, nil, nil)
	bench.BaselineSeconds = baseSec
	fmt.Printf("single-process baseline: %.3fs\n", baseSec)

	// Cold fleet runs at each worker count, each over its own shared
	// CAS reached through the HTTP blob surface.
	var warmCAS cache.Store
	fmt.Println("workers  seconds  units-remote  dispatched  requeues  identical")
	for _, n := range sweep {
		cas := cache.NewMemStore()
		urls, stop := fleetWorkers(cas, n)
		co := fleet.NewCoordinator(fleet.Config{Workers: urls})
		res, sec, digest := fleetAnalyze(srcs, cas, co.RunnerFor("tenant-a"))
		st := co.Stats()
		co.Close()
		stop()
		run := fleetRun{
			Workers:       n,
			Seconds:       sec,
			UnitsRemote:   res.Incr.UnitsRemote,
			UnitsReplayed: res.Incr.UnitsReplayed,
			Dispatched:    st.Dispatched,
			Requeues:      st.Requeues,
			Output:        digest,
			Identical:     digest == baseDigest,
		}
		bench.Runs = append(bench.Runs, run)
		fmt.Printf("%7d  %7.3f  %12d  %10d  %8d  %v\n",
			n, run.Seconds, run.UnitsRemote, run.Dispatched, run.Requeues, run.Identical)
		if !run.Identical {
			die(fmt.Errorf("fleet: %d-worker output differs from single-process — sharding changed results", n))
		}
		if run.UnitsRemote == 0 {
			die(fmt.Errorf("fleet: %d-worker cold run filled no units remotely", n))
		}
		warmCAS = cas
	}

	// Second tenant over the last sweep's warm CAS: a fresh
	// coordinator must replay, not dispatch.
	urls, stop := fleetWorkers(warmCAS, sweep[len(sweep)-1])
	co2 := fleet.NewCoordinator(fleet.Config{Workers: urls})
	second, _, secondDigest := fleetAnalyze(srcs, warmCAS, co2.RunnerFor("tenant-b"))
	bench.SecondTenantDispatched = co2.Stats().Dispatched
	co2.Close()
	stop()
	if secondDigest != baseDigest {
		die(fmt.Errorf("fleet: second tenant's output differs"))
	}
	total := second.Incr.UnitsReplayed + second.Incr.UnitsLive
	if total > 0 {
		bench.SecondTenantReuse = float64(second.Incr.UnitsReplayed) / float64(total)
	}
	fmt.Printf("second tenant over warm CAS: %.1f%% units replayed (bound >= %.0f%%), %d dispatched\n",
		100*bench.SecondTenantReuse, 100*fleetReuseBound, bench.SecondTenantDispatched)
	if bench.SecondTenantReuse < fleetReuseBound {
		die(fmt.Errorf("fleet: second tenant reused %.2f of units, want >= %.2f",
			bench.SecondTenantReuse, fleetReuseBound))
	}

	// Request coalescing: one cold daemon takes one post; a second
	// cold daemon takes K identical posts released together. The burst
	// must coalesce to a single analysis and finish near the one-post
	// wall-clock. The tree is fixed at the full size even in short
	// mode: the bound compares wall-clocks, so the analysis has to
	// dwarf per-post HTTP overhead for the ratio to measure coalescing
	// rather than connection setup.
	coalesceSrcs, _ := workload.MixedTree(4, 25, 2002)
	body, err := json.Marshal(server.AnalyzeRequest{Files: coalesceSrcs})
	if err != nil {
		die(err)
	}
	// Best of two cold daemons on each side: min-vs-min damps the
	// one-off stalls a shared host injects into either measurement.
	for i := 0; i < 2; i++ {
		one := httptest.NewServer(server.New(server.Config{Jobs: 2}).Handler())
		t0 := time.Now()
		fleetPost(one.URL, body)
		sec := time.Since(t0).Seconds()
		one.Close()
		if i == 0 || sec < bench.OneAnalyzeSeconds {
			bench.OneAnalyzeSeconds = sec
		}
	}
	for i := 0; i < 2; i++ {
		sec, analyses, coalesced := fleetBurst(body)
		if i == 0 || sec < bench.KAnalyzeSeconds {
			bench.KAnalyzeSeconds = sec
			bench.Analyses = analyses
			bench.CoalescedAnalyzes = coalesced
		}
		if analyses != 1 {
			bench.Analyses = analyses
			break
		}
	}
	bench.CoalesceRatio = bench.KAnalyzeSeconds / bench.OneAnalyzeSeconds
	fmt.Printf("coalescing: 1 post %.3fs, %d identical posts %.3fs (%.2fx, bound <= %.1fx), %d analyses, %d coalesced\n",
		bench.OneAnalyzeSeconds, fleetCoalesceK, bench.KAnalyzeSeconds,
		bench.CoalesceRatio, fleetCoalesceBound, bench.Analyses, bench.CoalescedAnalyzes)
	if bench.Analyses != 1 {
		die(fmt.Errorf("fleet: %d identical posts ran %d analyses, want 1", fleetCoalesceK, bench.Analyses))
	}
	if bench.CoalesceRatio > fleetCoalesceBound {
		die(fmt.Errorf("fleet: K-burst took %.2fx one analysis (bound %.1fx)",
			bench.CoalesceRatio, fleetCoalesceBound))
	}

	bench.PeakRSSBytes = profiling.PeakRSS()
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_fleet.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_fleet.json")
}
