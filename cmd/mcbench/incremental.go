package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/profiling"
	"repro/internal/workload"
	"repro/mc"
)

// expIncr measures the incremental-analysis tentpole: after an edit,
// a warm run against the resident cache must produce byte-identical
// ranked output to a fresh cold run while performing far fewer live
// function analyses (>= 5x fewer for a one-file body tweak on the E11
// tree). The series lands in BENCH_incremental.json.

var incrBenchCheckers = []string{"free", "lock", "null", "leak", "interrupt"}

type incrRun struct {
	Edit          string  `json:"edit"`
	ColdLiveFuncs int     `json:"cold_live_funcs"`
	WarmLiveFuncs int     `json:"warm_live_funcs"`
	Reduction     float64 `json:"reduction"`
	UnitsReplayed int     `json:"units_replayed"`
	UnitsLive     int     `json:"units_live"`
	FilesReparsed int     `json:"files_reparsed"`
	ColdSeconds   float64 `json:"cold_seconds"`
	WarmSeconds   float64 `json:"warm_seconds"`
	Output        string  `json:"output_sha256"`
	Identical     bool    `json:"identical_to_cold"`
}

type incrBench struct {
	Experiment string              `json:"experiment"`
	Workload   string              `json:"workload"`
	Host       profiling.HostFacts `json:"host"`
	Checkers   []string            `json:"checkers"`
	Jobs       int                 `json:"jobs"`
	Runs       []incrRun           `json:"runs"`
	// PeakRSSBytes is the process's high-water resident set when the
	// series finished (cumulative over every run in this process).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

// incrAnalyze runs the benchmark checker set over srcs, optionally
// against a resident store, and returns the result, a digest of the
// complete ranked output, and the wall-clock.
func incrAnalyze(srcs map[string]string, store cache.Store) (*mc.Result, string, float64) {
	a := mc.NewAnalyzer()
	// The reduction metric counts live function analyses; the compiled
	// multi-checker dispatch (§11) also eliminates live analyses by
	// skipping provably-silent (checker, root) pairs, which would
	// conflate the two effects (and zero out the warm count entirely).
	// Pin it off so this series keeps measuring the cache in isolation;
	// the dispatch has its own ablation (bench-multicheck).
	opts := mc.DefaultOptions()
	opts.MultiDispatch = false
	if err := a.Configure(mc.RunConfig{Options: &opts, Jobs: jobsFlag, CacheStore: store}); err != nil {
		die(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, name := range incrBenchCheckers {
		if err := a.LoadBundledChecker(name); err != nil {
			die(err)
		}
	}
	start := time.Now()
	res, err := a.RunContext(context.Background())
	elapsed := time.Since(start).Seconds()
	if err != nil {
		die(err)
	}
	var sb strings.Builder
	for _, r := range res.Ranked() {
		sb.WriteString(r.Detailed())
	}
	for _, g := range res.Grouped() {
		fmt.Fprintf(&sb, "%s %.3f %d\n", g.Rule, g.Z, len(g.Reports))
	}
	return res, fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String()))), elapsed
}

func expIncr() {
	srcs, _ := workload.MixedTree(4, 25, 2002)
	bench := incrBench{
		Experiment: "incremental-replay",
		Workload:   "MixedTree(4,25,2002)",
		Host:       profiling.Host(),
		Checkers:   incrBenchCheckers,
		Jobs:       jobsFlag,
	}

	edits := []workload.Edit{
		workload.TweakBody("tree_0.c"),
		workload.PrependBanner("tree_1.c"),
		workload.AppendBuggyFunc("tree_2.c", 1),
	}

	fmt.Println("edit                        cold-funcs  warm-funcs  reduction  units-replayed  identical")
	for _, e := range edits {
		// Fresh store, warmed by a cold run of the unedited tree.
		store := cache.NewMemStore()
		incrAnalyze(srcs, store)

		edited := e.Apply(srcs)
		warmRes, warmDigest, warmSec := incrAnalyze(edited, store)
		_, coldDigest, coldSec := incrAnalyze(edited, nil)

		// The cold baseline's live-analysis count comes from a cold
		// cached run over the same edited tree (the plain run keeps no
		// IncrStats).
		coldCached, coldCachedDigest, _ := incrAnalyze(edited, cache.NewMemStore())
		if coldCachedDigest != coldDigest {
			die(fmt.Errorf("%s: cold cached output differs from plain cold output", e.Name))
		}

		coldLive := coldCached.Incr.FuncsAnalyzedLive
		warmLive := warmRes.Incr.FuncsAnalyzedLive
		reduction := 0.0
		if warmLive > 0 {
			reduction = float64(coldLive) / float64(warmLive)
		}
		run := incrRun{
			Edit:          e.Name,
			ColdLiveFuncs: coldLive,
			WarmLiveFuncs: warmLive,
			Reduction:     reduction,
			UnitsReplayed: warmRes.Incr.UnitsReplayed,
			UnitsLive:     warmRes.Incr.UnitsLive,
			FilesReparsed: warmRes.Incr.FilesReparsed,
			ColdSeconds:   coldSec,
			WarmSeconds:   warmSec,
			Output:        warmDigest,
			Identical:     warmDigest == coldDigest,
		}
		bench.Runs = append(bench.Runs, run)
		fmt.Printf("%-26s  %10d  %10d  %8.1fx  %14d  %v\n",
			e.Name, coldLive, warmLive, reduction, run.UnitsReplayed, run.Identical)
	}

	for _, r := range bench.Runs {
		if !r.Identical {
			die(fmt.Errorf("%s: warm output differs from cold — replay broken", r.Edit))
		}
	}
	// The acceptance bar: a one-file body tweak replays >= 5x fewer
	// live function analyses than a cold run.
	if head := bench.Runs[0]; head.Reduction < 5 {
		die(fmt.Errorf("%s: reduction %.1fx below the 5x bar", head.Edit, head.Reduction))
	}

	bench.PeakRSSBytes = profiling.PeakRSS()
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_incremental.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_incremental.json")
}
