package main

// expMulticheck measures the multi-checker compiled dispatch
// (DESIGN.md §11) as a scaling ablation: synthetic checker suites of
// 5/50/200 checkers — the bundled five plus callee-renamed variants,
// the "many system-specific checkers, few relevant here" population
// the paper's §10 deployment describes — over the E11 seeded tree,
// with MultiDispatch on and off, at -j 1 and -j 8. Within each suite
// size every configuration must produce byte-identical ranked output
// (the variants' renamed callees never appear in the workload, so
// skipping them is observationally invisible), and with dispatch on
// the 50-checker suite must run within 3x the 5-checker suite — the
// sublinear claim — while the compat path grows roughly linearly. The
// series lands in BENCH_multicheck.json so CI can track it.

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strings"
	"time"

	"repro/internal/checkers"
	"repro/internal/profiling"
	"repro/internal/workload"
	"repro/mc"
)

type multiRun struct {
	Checkers int     `json:"checkers"`
	Dispatch bool    `json:"dispatch"`
	Jobs     int     `json:"jobs"`
	Seconds  float64 `json:"seconds"` // median over trials
	Output   string  `json:"output_sha256"`
}

type multiBench struct {
	Experiment string              `json:"experiment"`
	Workload   string              `json:"workload"`
	Host       profiling.HostFacts `json:"host"`
	Trials     int                 `json:"trials"`
	Runs       []multiRun          `json:"runs"`
	// RatioOn50 etc. are median(seconds at N checkers)/median(seconds
	// at 5 checkers) at -j 1 for each dispatch mode. The acceptance
	// criterion is RatioOn50 <= 3.
	RatioOn50   float64 `json:"ratio_50v5_dispatch_on"`
	RatioOff50  float64 `json:"ratio_50v5_dispatch_off"`
	RatioOn200  float64 `json:"ratio_200v5_dispatch_on"`
	RatioOff200 float64 `json:"ratio_200v5_dispatch_off"`
	Identical   bool    `json:"output_identical"`
	// PeakRSSBytes is the process's high-water resident set when the
	// series finished (cumulative over every run in this process).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

const multiTrials = 3

// variantSeeds lists, per bundled checker, the concrete callee names
// its patterns hinge on; renaming them (and the sm name) yields a
// checker that is structurally identical but watches an API surface
// the workload never touches.
var variantSeeds = []struct {
	name    string
	callees []string
}{
	{"free", []string{"kfree"}},
	{"lock", []string{"lock", "spin_lock", "trylock", "unlock", "spin_unlock"}},
	{"null", []string{"kmalloc", "malloc"}},
	{"interrupt", []string{"cli", "sti"}},
	{"block", []string{"cli", "sti"}},
}

var smNameRe = regexp.MustCompile(`(?m)^sm\s+(\w+);`)

// checkerSuite returns n checker sources: the bundled five verbatim,
// then callee-renamed variants cycling over the five.
func checkerSuite(n int) []string {
	var out []string
	for _, seed := range variantSeeds {
		s, ok := checkers.Lookup(seed.name)
		if !ok {
			die(fmt.Errorf("bundled checker %s missing", seed.name))
		}
		out = append(out, s.Text)
	}
	for v := 0; len(out) < n; v++ {
		seed := variantSeeds[v%len(variantSeeds)]
		s, _ := checkers.Lookup(seed.name)
		text := s.Text
		suffix := fmt.Sprintf("_v%d", v)
		for _, c := range seed.callees {
			re := regexp.MustCompile(`\b` + c + `\(`)
			text = re.ReplaceAllString(text, c+suffix+"(")
		}
		text = smNameRe.ReplaceAllString(text, "sm ${1}"+suffix+";")
		out = append(out, text)
	}
	return out[:n]
}

// multiAnalyze runs one suite over srcs and returns wall clock plus
// the ranked-output digest (same rendering as suiteAnalyze).
func multiAnalyze(srcs map[string]string, checkerSrcs []string, jobs int, dispatch bool) (time.Duration, string) {
	a := mc.NewAnalyzer()
	opts := mc.DefaultOptions()
	opts.MultiDispatch = dispatch
	if err := a.Configure(mc.RunConfig{Options: &opts, Jobs: jobs}); err != nil {
		die(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for i, cs := range checkerSrcs {
		if err := a.LoadChecker(cs); err != nil {
			die(fmt.Errorf("suite checker %d: %w", i, err))
		}
	}
	a.MarkFunction("net_wait", "blocking")
	start := time.Now()
	res, err := a.RunContext(context.Background())
	elapsed := time.Since(start)
	if err != nil {
		die(err)
	}
	var sb strings.Builder
	for _, r := range res.Ranked() {
		sb.WriteString(r.Detailed())
	}
	for _, g := range res.Grouped() {
		fmt.Fprintf(&sb, "%s %.3f %d\n", g.Rule, g.Z, len(g.Reports))
	}
	return elapsed, fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

func expMulticheck() {
	srcs, _ := workload.MixedTree(4, 25, 2002)
	sizes := []int{5, 50, 200}

	bench := multiBench{
		Experiment: "multicheck-dispatch",
		Workload:   "MixedTree(4,25,2002), 5 bundled checkers + renamed variants",
		Host:       profiling.Host(),
		Trials:     multiTrials,
		Identical:  true,
	}

	// med[size][dispatch] at -j 1, for the scaling ratios.
	med := map[int]map[bool]float64{}
	fmt.Println("checkers  dispatch  jobs   seconds  output")
	for _, n := range sizes {
		suite := checkerSuite(n)
		med[n] = map[bool]float64{}
		var refDigest string
		for _, dispatch := range []bool{false, true} {
			for _, jobs := range []int{1, 8} {
				var secs []float64
				var digest string
				for t := 0; t < multiTrials; t++ {
					runtime.GC()
					d, dig := multiAnalyze(srcs, suite, jobs, dispatch)
					secs = append(secs, d.Seconds())
					if t == 0 {
						digest = dig
					} else if dig != digest {
						die(fmt.Errorf("multicheck %d/%v/-j %d: output varied across trials", n, dispatch, jobs))
					}
				}
				if refDigest == "" {
					refDigest = digest
				}
				if digest != refDigest {
					bench.Identical = false
					die(fmt.Errorf("multicheck %d checkers: dispatch=%v -j %d output differs — dispatch changed results", n, dispatch, jobs))
				}
				m := median(secs)
				if jobs == 1 {
					med[n][dispatch] = m
				}
				bench.Runs = append(bench.Runs, multiRun{
					Checkers: n, Dispatch: dispatch, Jobs: jobs,
					Seconds: m, Output: digest,
				})
				fmt.Printf("%8d  %8v  %4d  %8.3f  %s\n", n, dispatch, jobs, m, digest[:12])
			}
		}
	}

	bench.PeakRSSBytes = profiling.PeakRSS()
	bench.RatioOn50 = med[50][true] / med[5][true]
	bench.RatioOff50 = med[50][false] / med[5][false]
	bench.RatioOn200 = med[200][true] / med[5][true]
	bench.RatioOff200 = med[200][false] / med[5][false]

	fmt.Printf("scaling 5 -> 50 checkers at -j 1: %.2fx with dispatch, %.2fx without (criterion: <= 3x with dispatch)\n",
		bench.RatioOn50, bench.RatioOff50)
	fmt.Printf("scaling 5 -> 200 checkers at -j 1: %.2fx with dispatch, %.2fx without\n",
		bench.RatioOn200, bench.RatioOff200)
	if bench.RatioOn50 > 3 {
		die(fmt.Errorf("multicheck: 50-checker suite took %.2fx the 5-checker suite with dispatch on (> 3x)", bench.RatioOn50))
	}

	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_multicheck.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_multicheck.json")
}
