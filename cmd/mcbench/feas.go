package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cache"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/workload"
	"repro/mc"
)

// expFeas measures the second-tier feasibility pass (DESIGN.md §13)
// on a seeded population where ground truth is exact: half the
// reports are false positives whose recorded witness paths are
// arithmetically infeasible (disjoint intervals; an equality pinned
// outside an inequality's range — both invisible to the tier-1
// pruner), and half are genuine use-after-frees the pass must not
// touch. The headline numbers are the infeasible-kill rate on the
// seeded false positives, the false-kill rate on the seeded true
// positives (asserted to be exactly zero — the pass's soundness
// contract), and the per-verdict latency distribution. A second,
// warm run through the same cache store checks that verdicts replay
// content-addressed. The series lands in BENCH_feas.json.

// feasShortFlag trims the population for CI.
var feasShortFlag = flag.Bool("feas-short", false, "feas experiment: smaller population (CI mode)")

type feasBench struct {
	Experiment string              `json:"experiment"`
	Workload   string              `json:"workload"`
	Host       profiling.HostFacts `json:"host"`
	Short      bool                `json:"short,omitempty"`
	Funcs      int                 `json:"funcs"`
	Reports    int                 `json:"reports"`
	SeededTPs  int                 `json:"seeded_true_positives"`
	SeededFPs  int                 `json:"seeded_false_positives"`

	Confirmed  int64 `json:"confirmed"`
	Infeasible int64 `json:"infeasible"`
	Unknown    int64 `json:"unknown"`

	// InfeasibleKillRate is the fraction of seeded-FP reports the pass
	// marked infeasible; FalseKillRate is the fraction of seeded-TP
	// reports marked infeasible and must be 0.
	InfeasibleKillRate float64 `json:"infeasible_kill_rate"`
	FalseKillRate      float64 `json:"false_kill_rate"`
	// ConfirmRate is the fraction of seeded-TP reports marked confirmed.
	ConfirmRate float64 `json:"tp_confirm_rate"`

	P50Micros int64 `json:"verdict_p50_us"`
	P95Micros int64 `json:"verdict_p95_us"`

	ColdSeconds   float64 `json:"verify_cold_seconds"`
	WarmSeconds   float64 `json:"verify_warm_seconds"`
	WarmCacheHits int64   `json:"warm_cache_hits"`
	// PeakRSSBytes is the process's high-water resident set when the
	// series finished (cumulative over every run in this process).
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

func feasAnalyze(pr workload.Program, store cache.Store) *mc.Result {
	a := mc.NewAnalyzer()
	if err := a.Configure(mc.RunConfig{CacheStore: store}); err != nil {
		die(err)
	}
	a.AddSource("feas.c", pr.Source)
	if err := a.LoadBundledChecker("free"); err != nil {
		die(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		die(err)
	}
	return res
}

func expFeas() {
	funcs := 200
	if *feasShortFlag {
		funcs = 48
	}
	const seed = 2002
	pr := workload.FeasPopulation(funcs, seed)
	truth := map[string]bool{}
	for _, b := range pr.Bugs {
		truth[b.Func] = true
	}

	store := cache.NewMemStore()
	a := mc.NewAnalyzer()
	if err := a.Configure(mc.RunConfig{CacheStore: store}); err != nil {
		die(err)
	}
	a.AddSource("feas.c", pr.Source)
	if err := a.LoadBundledChecker("free"); err != nil {
		die(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		die(err)
	}

	t0 := time.Now()
	stats := a.Verify(res, 4)
	cold := time.Since(t0)

	bench := feasBench{
		Experiment: "feas-verdicts",
		Workload:   fmt.Sprintf("FeasPopulation(%d,%d), free checker, 4 verdict workers", funcs, seed),
		Host:       profiling.Host(),
		Short:      *feasShortFlag,
		Funcs:      funcs,
		Reports:    len(res.Reports),
		SeededTPs:  len(pr.Bugs),
		SeededFPs:  funcs - len(pr.Bugs),
		Confirmed:  stats.Confirmed,
		Infeasible: stats.Infeasible,
		Unknown:    stats.Unknown,
		P50Micros:  stats.P50Micros,
		P95Micros:  stats.P95Micros,
	}

	var fpReports, fpKilled, tpReports, tpKilled, tpConfirmed int
	for _, r := range res.Reports {
		if truth[r.Func] {
			tpReports++
			switch r.Verdict {
			case report.VerdictInfeasible:
				tpKilled++
				fmt.Printf("  FALSE KILL: %s (%s)\n", r, r.VerdictWhy)
			case report.VerdictConfirmed:
				tpConfirmed++
			}
		} else {
			fpReports++
			if r.Verdict == report.VerdictInfeasible {
				fpKilled++
			}
		}
	}
	if fpReports > 0 {
		bench.InfeasibleKillRate = float64(fpKilled) / float64(fpReports)
	}
	if tpReports > 0 {
		bench.FalseKillRate = float64(tpKilled) / float64(tpReports)
		bench.ConfirmRate = float64(tpConfirmed) / float64(tpReports)
	}
	bench.ColdSeconds = cold.Seconds()

	// Warm pass: a fresh analyzer over the same store replays both the
	// unit results and the verdicts content-addressed.
	resWarm := feasAnalyze(pr, store)
	aw := mc.NewAnalyzer()
	if err := aw.Configure(mc.RunConfig{CacheStore: store}); err != nil {
		die(err)
	}
	t1 := time.Now()
	warmStats := aw.Verify(resWarm, 4)
	bench.WarmSeconds = time.Since(t1).Seconds()
	bench.WarmCacheHits = warmStats.CacheHits

	fmt.Printf("population: %d functions (%d seeded TPs, %d seeded FPs), %d reports\n",
		funcs, bench.SeededTPs, bench.SeededFPs, bench.Reports)
	fmt.Printf("verdicts: %d confirmed, %d infeasible, %d unknown\n",
		stats.Confirmed, stats.Infeasible, stats.Unknown)
	fmt.Printf("infeasible-kill rate on seeded FPs: %.3f (%d/%d)\n",
		bench.InfeasibleKillRate, fpKilled, fpReports)
	fmt.Printf("false-kill rate on seeded TPs:      %.3f (%d/%d)  [must be 0]\n",
		bench.FalseKillRate, tpKilled, tpReports)
	fmt.Printf("TP confirm rate: %.3f, verdict latency p50 %dus p95 %dus\n",
		bench.ConfirmRate, stats.P50Micros, stats.P95Micros)
	fmt.Printf("verify wall-clock: cold %.3fs, warm %.3fs (%d verdict cache hits)\n",
		bench.ColdSeconds, bench.WarmSeconds, bench.WarmCacheHits)

	if tpKilled > 0 {
		die(fmt.Errorf("feas: %d seeded true positives marked infeasible — the pass is unsound", tpKilled))
	}
	if fpKilled == 0 {
		die(fmt.Errorf("feas: no seeded false positive was killed — the pass is inert"))
	}
	if bench.WarmCacheHits == 0 {
		die(fmt.Errorf("feas: warm run replayed no verdicts from the cache"))
	}

	bench.PeakRSSBytes = profiling.PeakRSS()
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		die(err)
	}
	if err := os.WriteFile("BENCH_feas.json", append(data, '\n'), 0o644); err != nil {
		die(err)
	}
	fmt.Println("wrote BENCH_feas.json")
}
