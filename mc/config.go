package mc

// Consolidated configuration (the context-first API surface, DESIGN.md
// §9): RunConfig gathers every knob — options, parallelism, cache
// wiring, budgets, timeout — and Configure applies them in one call.
// This is the only configuration surface; the per-field setters from
// earlier releases are gone (see README.md "Configuring the analyzer").

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/metal"
)

// Budgets re-exports the engine resource budgets (core.Budgets): a
// per-path step ceiling, a per-root block ceiling, and a per-root wall
// clock. A tripped budget degrades the result (Result.Degraded) rather
// than failing the run.
type Budgets = core.Budgets

// DegradeEvent re-exports one recorded traversal truncation.
type DegradeEvent = core.DegradeEvent

// CheckerFailure re-exports the structured record of a checker that
// panicked mid-run.
type CheckerFailure = core.CheckerFailure

// RunConfig is the consolidated analyzer configuration for Configure
// and AnalyzeContext. The zero value changes nothing: every field is
// optional and only non-zero fields are applied.
type RunConfig struct {
	// Options replaces the engine feature switches when non-nil.
	Options *Options
	// Jobs sets the worker count for parallel parsing and checker
	// execution; 0 keeps the current setting, negative restores the
	// default (runtime.GOMAXPROCS).
	Jobs int
	// CacheDir enables the persistent analysis cache in a directory
	// (created if needed). Mutually exclusive with CacheStore.
	CacheDir string
	// CacheStore enables the analysis cache on an arbitrary store
	// (e.g. cache.NewMemStore() for a resident daemon).
	CacheStore cache.Store
	// Budgets bounds each traversal; a non-zero value overrides
	// Options.Budgets (so callers can pass DefaultOptions plus a
	// budget without touching the struct).
	Budgets Budgets
	// MaxResidentMB enables the streaming mode (DESIGN.md §12) with a
	// soft memory budget in MiB; > 0 overrides Options.MaxResidentMB.
	// Output stays byte-identical to the in-memory run.
	MaxResidentMB int
	// SpillDir is the streaming mode's summary-store directory
	// (created if needed). Empty spills to a per-run temp directory
	// that is removed when the run returns — set it (or share
	// CacheDir's parent) when post-run supergraph inspection of
	// evicted functions matters.
	SpillDir string
	// Timeout bounds each RunContext call; RunContext derives a
	// deadline context per run. Zero means no analyzer-imposed bound.
	Timeout time.Duration
	// UnitRunner, when non-nil, is offered each phase's cache-miss
	// units before they run locally (fleet dispatch, DESIGN.md §15).
	// Requires a cache store: workers fill unit keys in the shared
	// store and the analyzer replays them. Ignored without one.
	UnitRunner UnitRunner
}

// Configure applies a consolidated configuration. Fields at their
// zero value are left untouched, so Configure can be called more than
// once to adjust individual knobs.
func (a *Analyzer) Configure(cfg RunConfig) error {
	if cfg.CacheDir != "" && cfg.CacheStore != nil {
		return fmt.Errorf("RunConfig: CacheDir and CacheStore are mutually exclusive")
	}
	if cfg.Options != nil {
		a.opts = *cfg.Options
	}
	if cfg.Budgets.Active() {
		a.opts.Budgets = cfg.Budgets
	}
	if cfg.MaxResidentMB > 0 {
		a.opts.MaxResidentMB = cfg.MaxResidentMB
	}
	if cfg.SpillDir != "" {
		a.spillDir = cfg.SpillDir
	}
	if cfg.Jobs < 0 {
		a.jobs = 0
	} else if cfg.Jobs > 0 {
		a.jobs = cfg.Jobs
	}
	if cfg.CacheDir != "" {
		ds, err := cache.NewDirStore(cfg.CacheDir)
		if err != nil {
			return err
		}
		a.setStore(ds)
	}
	if cfg.CacheStore != nil {
		a.setStore(cfg.CacheStore)
	}
	if cfg.Timeout > 0 {
		a.timeout = cfg.Timeout
	}
	if cfg.UnitRunner != nil {
		a.unitRunner = cfg.UnitRunner
	}
	return nil
}

// AnalyzeContext is the one-call entry point: build an analyzer from
// cfg, add every source, load every bundled checker by name, and run
// under ctx. It is the daemon's per-request path and the shortest
// road from sources to ranked reports:
//
//	res, err := mc.AnalyzeContext(ctx, mc.RunConfig{Timeout: time.Minute},
//	    map[string]string{"driver.c": src}, "free", "null")
//
// On cancellation it returns the partial Result alongside ctx.Err(),
// exactly as RunContext does.
func AnalyzeContext(ctx context.Context, cfg RunConfig, sources map[string]string, checkers ...string) (*Result, error) {
	a := NewAnalyzer()
	if err := a.Configure(cfg); err != nil {
		return nil, err
	}
	for name, src := range sources {
		a.AddSource(name, src)
	}
	for _, name := range checkers {
		if err := a.LoadBundledChecker(name); err != nil {
			return nil, err
		}
	}
	return a.RunContext(ctx)
}

// LoadCheckerWithCallouts compiles metal checker source and registers
// custom Go callout functions the checker's patterns may invoke (by
// name, over the builtin callout library). Checkers with native
// callouts always run live — Go code is invisible to the cache
// fingerprint — and a callout that panics is contained per checker
// like any other checker fault (Result.Failures).
func (a *Analyzer) LoadCheckerWithCallouts(src string, callouts map[string]Callout) error {
	c, err := metal.Parse(src)
	if err != nil {
		return err
	}
	for name, fn := range callouts {
		c.Callouts[name] = fn
	}
	a.checkers = append(a.checkers, c)
	a.checkerFPs = append(a.checkerFPs, cc.HashBytes([]byte(src)))
	// Native callouts cannot ride a fleet job (the Go code is not in
	// the source text), so no shippable source is retained — such
	// checkers always run on the coordinator, exactly as they always
	// run live for the cache.
	a.checkerSrcs = append(a.checkerSrcs, "")
	return nil
}
