package mc

// The second-tier feasibility pass, analyzer-side (DESIGN.md §13).
// Verify annotates a finished Result's reports with verdicts; it
// never adds or removes a report, so the report set (ignoring the
// verdict fields) is byte-identical whether or not it runs.

import (
	"repro/internal/feas"
	"repro/internal/report"
)

// VerdictBudget derives the feasibility pass's per-verdict budget
// from the analyzer's governance budgets: a PathSteps ceiling also
// caps how many recorded witness events one verdict may replay.
func (a *Analyzer) VerdictBudget() feas.Budget {
	var b feas.Budget
	if a.opts.Budgets.PathSteps > 0 {
		b.MaxSteps = int(a.opts.Budgets.PathSteps)
	}
	return b
}

// Verify runs the feasibility pass synchronously over res.Reports
// with a worker pool of the given size (0 means one worker), writing
// Verdict/VerdictWhy into each report. Verdicts are content-address
// cached in the analyzer's cache store (when one is configured), so
// warm runs replay them.
func (a *Analyzer) Verify(res *Result, workers int) feas.Stats {
	return feas.Annotate(res.Reports, feas.Config{
		Workers: workers,
		Budget:  a.VerdictBudget(),
		Store:   a.cacheStore,
	})
}

// VerifiedOnly filters reports by verdict, preserving order: verdict
// "" matches everything (no filter).
func VerifiedOnly(reports []*report.Report, verdict string) []*report.Report {
	if verdict == "" {
		return reports
	}
	var out []*report.Report
	for _, r := range reports {
		v := r.Verdict
		if v == "" {
			v = report.VerdictUnverified
		}
		if v == verdict {
			out = append(out, r)
		}
	}
	return out
}
