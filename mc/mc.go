// Package mc is the public API of this metal/xgcc reproduction — the
// metacompilation system of Hallem, Chelf, Xie & Engler, "A System and
// Language for Building System-Specific, Static Analyses" (PLDI 2002).
//
// A typical session parses C sources, loads one or more metal
// checkers, runs the context-sensitive interprocedural analysis, and
// reads back ranked error reports:
//
//	a := mc.NewAnalyzer()
//	a.AddSource("driver.c", src)
//	a.LoadBundledChecker("free")
//	res, err := a.RunContext(ctx)
//	for _, r := range res.Ranked() {
//	    fmt.Println(r)
//	}
package mc

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/cc"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/metal"
	"repro/internal/pattern"
	"repro/internal/prog"
	"repro/internal/rank"
	"repro/internal/report"
)

// Options re-exports the engine feature switches.
type Options = core.Options

// DefaultOptions enables the full analysis (interprocedural traversal,
// block and function caching, false path pruning, synonyms, kills).
func DefaultOptions() Options { return core.DefaultOptions() }

// Report re-exports the report type.
type Report = report.Report

// Analyzer assembles sources and checkers and runs the engine.
type Analyzer struct {
	opts     Options
	srcs     map[string]string
	files    []*cc.File
	checkers []*metal.Checker
	shared   *core.Shared
	history  *report.History
	// Marks lets callers pre-annotate function names (e.g. blocking
	// functions for the block checker).
	marks map[string][]string
	// jobs is the worker count for parallel parsing and checker
	// execution; 0 means runtime.GOMAXPROCS(0).
	jobs int
	// Incremental cache (RunConfig.CacheDir / CacheStore); nil runs
	// the plain path. checkerFPs tracks one source fingerprint per
	// loaded checker for cache keying.
	cacheStore   cache.Store
	cacheMetrics *cache.Metrics
	checkerFPs   []string
	// checkerSrcs retains each loaded checker's metal source so fleet
	// jobs can ship it to workers (RunConfig.UnitRunner); entries are
	// "" for checkers without shippable source.
	checkerSrcs []string
	// unitRunner, when set, is offered each phase's cache-miss units
	// before they run locally (RunConfig.UnitRunner; DESIGN.md §15).
	unitRunner func(ctx context.Context, run *UnitRun) error
	// timeout bounds each RunContext call (RunConfig.Timeout); zero
	// means no bound beyond the caller's context.
	timeout time.Duration
	// spillDir is the streaming mode's persistent summary-store
	// directory (RunConfig.SpillDir); empty uses a per-run temp dir.
	spillDir string
}

// NewAnalyzer returns an analyzer with default options.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		opts:   core.DefaultOptions(),
		srcs:   map[string]string{},
		shared: core.NewShared(),
		marks:  map[string][]string{},
	}
}

func (a *Analyzer) parallelism() int {
	if a.jobs > 0 {
		return a.jobs
	}
	return runtime.GOMAXPROCS(0)
}

// AddSource registers one C translation unit by name, replacing any
// previous source under the same name.
func (a *Analyzer) AddSource(name, src string) { a.srcs[name] = src }

// AddFile registers a C file from disk under its (cleaned) path, so
// same-named files from different directories stay distinct. A path
// already registered is a duplicate and an error.
func (a *Analyzer) AddFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	name := filepath.Clean(path)
	if _, dup := a.srcs[name]; dup {
		return fmt.Errorf("duplicate source %s", name)
	}
	a.AddSource(name, string(data))
	return nil
}

// AddDirectory registers every .c file in a directory (not
// recursive).
func (a *Analyzer) AddDirectory(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".c" {
			continue
		}
		if err := a.AddFile(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}

// AddAST registers a pre-parsed translation unit (pass 2 of the
// two-pass pipeline; see EmitAST).
func (a *Analyzer) AddAST(f *cc.File) { a.files = append(a.files, f) }

// EmitAST runs pass 1 on one source: parse and serialize the AST, as
// §6 describes ("compiles each file in isolation, emitting ASTs to a
// temporary file").
func EmitAST(name, src string) ([]byte, error) {
	f, err := cc.ParseFile(name, src)
	if err != nil {
		return nil, err
	}
	return cc.EmitFile(f), nil
}

// LoadAST reassembles an emitted AST (pass 2).
func LoadAST(data []byte) (*cc.File, error) { return cc.ReadFile(data) }

// LoadChecker compiles metal checker source text.
func (a *Analyzer) LoadChecker(src string) error {
	c, err := metal.Parse(src)
	if err != nil {
		return err
	}
	a.checkers = append(a.checkers, c)
	a.checkerFPs = append(a.checkerFPs, cc.HashBytes([]byte(src)))
	a.checkerSrcs = append(a.checkerSrcs, src)
	return nil
}

// LoadBundledChecker loads one of the shipped checkers by name (free,
// lock, null, interrupt, block, banned, format, leak, realloc,
// sec-annotator, panic-marker).
func (a *Analyzer) LoadBundledChecker(name string) error {
	s, ok := checkers.Lookup(name)
	if !ok {
		return &checkers.UnknownCheckerError{Name: name}
	}
	return a.LoadChecker(s.Text)
}

// BundledCheckers lists the shipped checker names and docs.
func BundledCheckers() []checkers.Source { return checkers.All() }

// MarkFunction pre-annotates a function name (composition flags such
// as "blocking" or "pathkill").
func (a *Analyzer) MarkFunction(name, key string) {
	a.marks[name] = append(a.marks[name], key)
}

// SetHistory installs a prior version's reports; matching reports are
// suppressed (§8 "History").
func (a *Analyzer) SetHistory(old []*Report) { a.history = report.NewHistory(old) }

// Result is one analysis run's output.
type Result struct {
	// Program is the assembled whole-program view.
	Program *prog.Program
	// Raw reports in emission order, after history suppression.
	Reports []*Report
	// RuleStats holds z-statistic evidence per rule.
	RuleStats map[string]rank.RuleStat
	// Stats aggregates engine counters per checker.
	Stats map[string]core.Stats
	// Engines retains each checker's engine for summary inspection.
	Engines map[string]*core.Engine
	// Incr reports what the cache-aware run replayed versus analyzed
	// live; nil when the cache is disabled.
	Incr *IncrStats
	// Spill reports the streaming mode's memory-bounding activity
	// (evictions, reloads, spill bytes, ASTs released); nil when
	// Options.MaxResidentMB is 0 (DESIGN.md §12).
	Spill *SpillStats
	// Failures lists checkers that panicked mid-run (a metal action or
	// Go-callout bug). A failed checker keeps the reports it emitted
	// before crashing; the remaining checkers run to completion.
	Failures []*CheckerFailure
	// Degraded reports that some traversal was truncated — a budget
	// tripped or the context was cancelled. Degradations records
	// exactly what was cut. Degraded results are never cached.
	Degraded     bool
	Degradations []DegradeEvent
}

// RunContext parses everything (pass 1 fans out over a worker pool),
// assembles the program, and applies each loaded checker (engines run
// concurrently, ordered into phases around the composition barrier).
// Results are merged deterministically in checker load order, so the
// output is bit-identical at every parallelism level; see DESIGN.md §5
// "Engine parallelism".
//
// The context cancels the analysis mid-traversal: the engines stop at
// the next governance poll (within ~256 blocks), and RunContext
// returns the partial Result alongside ctx.Err(). The partial result
// carries a DegradeCancelled record per interrupted checker, so
// callers can distinguish "complete" from "cut short". A checker that
// panics is contained: it lands in Result.Failures and the remaining
// checkers finish normally (DESIGN.md §9).
func (a *Analyzer) RunContext(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if a.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, a.timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(a.srcs)+len(a.files) == 0 {
		return nil, fmt.Errorf("no sources added")
	}
	if len(a.checkers) == 0 {
		return nil, fmt.Errorf("no checkers loaded")
	}
	if a.cacheStore != nil {
		return a.runCached(ctx)
	}
	files, err := a.parseSources()
	if err != nil {
		return nil, err
	}
	p := prog.Build(files...)

	// Pre-annotations apply before any checker runs; sorted order keeps
	// the engine's input stream deterministic (the paper's caching model
	// assumes deterministic extensions, §5.1).
	for _, m := range a.sortedMarks() {
		a.shared.Mark(m.name, m.key)
	}

	// Streaming mode (DESIGN.md §12): spill summaries and evict
	// per-function state at unit retirement, releasing ASTs once every
	// checker is done with them. Eviction never touches state a
	// remaining traversal can read, so output is unchanged.
	var stream *streamState
	var retire *prog.RetirePlan
	if a.opts.MaxResidentMB > 0 {
		stream, err = a.newStream(p, files, len(a.checkers))
		if err != nil {
			return nil, err
		}
		defer stream.cleanup()
		retire = p.PlanRetire(p.Roots)
	}

	engines := make([]*core.Engine, len(a.checkers))
	for i, c := range a.checkers {
		engines[i] = core.NewEngineShared(p, c, a.opts, a.shared)
		if stream != nil {
			engines[i].SetSpill(stream.store, stream.keyFor(a.checkerFPs[i]))
			engines[i].SetRetire(retire, stream.release.done)
			engines[i].ShareRetired(stream.retired[a.checkerFPs[i]])
		}
	}
	// Multi-checker compiled dispatch (DESIGN.md §11): one automaton
	// over the union of all loaded checkers' patterns, built once per
	// run and shared read-only by every engine.
	if a.opts.MultiDispatch {
		cd := core.CompileDispatch(p, a.checkers)
		for i := range engines {
			engines[i].SetCompiled(cd, i)
		}
	}
	for _, phase := range core.PlanPhases(a.checkers) {
		a.runPhase(ctx, engines, phase)
	}

	res := &Result{
		Program:   p,
		RuleStats: map[string]rank.RuleStat{},
		Stats:     map[string]core.Stats{},
		Engines:   map[string]*core.Engine{},
	}
	for i, c := range a.checkers {
		en := engines[i]
		res.Reports = append(res.Reports, en.Reports.Reports...)
		for rule, rc := range en.RuleStats {
			prev := res.RuleStats[rule]
			prev.Rule = rule
			prev.Examples += rc.Examples
			prev.Violations += rc.Violations
			res.RuleStats[rule] = prev
		}
		res.Stats[c.Name] = en.Stats
		res.Engines[c.Name] = en
		collectGovernance(res, en)
	}
	collectSpill(res, stream, engines)
	if a.history != nil {
		res.Reports = a.history.Suppress(res.Reports)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// collectGovernance folds one engine's failure/degradation records
// into the result.
func collectGovernance(res *Result, en *core.Engine) {
	if en.Failure != nil {
		res.Failures = append(res.Failures, en.Failure)
	}
	if len(en.Degradations) > 0 {
		res.Degradations = append(res.Degradations, en.Degradations...)
		res.Degraded = true
	}
}

// Ranked returns the reports ordered by the generic ranking criteria
// (§9): severity class, locality, indirection, then distance +
// conditionals.
func (r *Result) Ranked() []*Report { return rank.Generic(r.Reports) }

// ZRanked returns the reports ordered by statistical rule reliability
// first (§9 "Statistical ranking"), generic criteria within.
func (r *Result) ZRanked() []*Report { return rank.Statistical(r.Reports, r.RuleStats) }

// Grouped returns z-ordered rule groups.
func (r *Result) Grouped() []rank.RuleGroup { return rank.Grouped(r.Reports, r.RuleStats) }

// InferPairs runs the statistical must-pair rule inference of [10]
// over the assembled program.
func (r *Result) InferPairs(filter func(string) bool) []checkers.InferredPair {
	return checkers.InferPairs(r.Program, filter)
}

// Callout re-exports the custom-callout type for native extensions.
type Callout = pattern.CalloutFunc
