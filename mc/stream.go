package mc

// Streaming & memory bounding (DESIGN.md §12): the mc-side wiring of
// the engine's spill/retire hooks. When Options.MaxResidentMB > 0 the
// run streams: every engine spills a function's summaries to an
// on-disk store and drops its funcInfo caches the moment the unit DAG
// retires it, and once every checker has retired a function its AST is
// released too (astReleaser). Output is byte-identical to the
// in-memory run — eviction only ever touches state no remaining
// traversal can read (see internal/core/stream.go for the argument) —
// at the price of post-run inspection: supergraph dumps of released
// functions render empty, and InferPairs sees no call sites in them.

import (
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cache"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/spill"
)

// SpillStats reports one streaming run's memory-bounding activity
// (Result.Spill; nil when streaming is off).
type SpillStats struct {
	// Evictions counts per-engine funcInfo blocks dropped at unit
	// retirement; Reloads counts summaries decoded back from the store
	// for inspection.
	Evictions int64 `json:"evictions"`
	Reloads   int64 `json:"reloads"`
	// SpillPuts / SpillBytes count summaries written to the store and
	// their encoded size.
	SpillPuts  int64 `json:"spill_puts"`
	SpillBytes int64 `json:"spill_bytes"`
	// ASTsReleased counts functions whose CFG/body AST was freed after
	// every checker retired them.
	ASTsReleased int64 `json:"asts_released"`
}

// astReleaser frees a function's AST once every checker has retired
// it. Each engine's retire callback (and, on the cached path, each
// replayed task) decrements the function's countdown; the goroutine
// performing the final decrement releases the body while holding the
// mutex, which also orders the write after every earlier reader's own
// decrement — so the release is race-free without the readers taking
// any lock on their hot path.
type astReleaser struct {
	mu       sync.Mutex
	left     map[*prog.Function]int
	released int64
}

func newASTReleaser(fns []*prog.Function, need int) *astReleaser {
	left := make(map[*prog.Function]int, len(fns))
	for _, fn := range fns {
		left[fn] = need
	}
	return &astReleaser{left: left}
}

// done records that one checker is finished with the given functions,
// releasing any whose countdown reaches zero.
func (ar *astReleaser) done(fns []*prog.Function) {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	for _, fn := range fns {
		n, ok := ar.left[fn]
		if !ok {
			continue
		}
		if n--; n > 0 {
			ar.left[fn] = n
			continue
		}
		delete(ar.left, fn)
		fn.ReleaseBody()
		ar.released++
	}
}

func (ar *astReleaser) count() int64 {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.released
}

// streamState is one run's streaming context: the summary store, the
// AST releaser, and the precomputed content-addressed key material.
// Function hashes are captured before any traversal starts because
// reload may recompute a key after the body was released.
type streamState struct {
	store   *spill.Store
	release *astReleaser
	optsFP  string
	envFP   string
	funcKey map[*prog.Function]string
	// retired holds one shared retired-set per checker fingerprint:
	// same-checker sibling engines (the cached path runs one engine per
	// unit) publish retirements to it and may reload each other's
	// spilled summaries (core.RetiredSet documents why that preserves
	// byte-identical output).
	retired map[string]*core.RetiredSet
	cleanup func()
}

// newStream builds the run's streaming context. need is how many
// checker passes must retire a function before its AST may go. The
// store lives in RunConfig.SpillDir when set (persistent, so post-run
// inspection keeps working across processes); otherwise in a temp
// directory removed when the run returns.
func (a *Analyzer) newStream(p *prog.Program, files []*cc.File, need int) (*streamState, error) {
	dir := a.spillDir
	cleanup := func() {}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "xgcc-spill-*")
		if err != nil {
			return nil, err
		}
		dir = tmp
		cleanup = func() { os.RemoveAll(tmp) }
	}
	// The store's backend is a single packed append-only log, not a
	// file per summary: spilling happens once per (function, checker)
	// and the per-put open/rename of a directory store dominated the
	// spill-on wall-clock at scale (see internal/spill/log.go).
	lg, err := spill.OpenLog(filepath.Join(dir, "summaries.log"))
	if err != nil {
		cleanup()
		return nil, err
	}
	prevCleanup := cleanup
	cleanup = func() {
		lg.Close()
		prevCleanup()
	}
	// A quarter of the budget fronts the store as a decoded-summary
	// LRU; the floor keeps tiny budgets from thrashing single entries.
	budget := int64(a.opts.MaxResidentMB) << 20 / 4
	if budget < 1<<20 {
		budget = 1 << 20
	}
	st := &streamState{
		store:   spill.New(lg, budget),
		release: newASTReleaser(p.All, need),
		optsFP:  optionsFingerprint(a.opts),
		envFP:   cc.EnvHash(files),
		funcKey: make(map[*prog.Function]string, len(p.All)),
		retired: make(map[string]*core.RetiredSet, len(a.checkerFPs)),
		cleanup: cleanup,
	}
	for _, fn := range p.All {
		st.funcKey[fn] = prog.FuncID(fn) + "=" + cc.HashDecl(fn.Decl)
	}
	for _, fp := range a.checkerFPs {
		st.retired[fp] = core.NewRetiredSet()
	}
	return st, nil
}

// keyFor returns the engine's spill-key function for one checker: the
// same fingerprint family the incremental cache keys by (checker
// source, options, declaration environment, function content), so
// identical content re-spilled across runs lands on identical keys.
func (st *streamState) keyFor(checkerFP string) func(*prog.Function) string {
	return func(fn *prog.Function) string {
		return cache.Key("spill", checkerFP, st.optsFP, st.envFP, st.funcKey[fn])
	}
}

// collectSpill folds the run's streaming counters into the result.
func collectSpill(res *Result, st *streamState, engines []*core.Engine) {
	if st == nil {
		return
	}
	sp := &SpillStats{ASTsReleased: st.release.count()}
	for _, en := range engines {
		if en == nil {
			continue
		}
		sp.Evictions += en.Spill.Evictions
		sp.Reloads += en.Spill.Reloads
	}
	c := st.store.Counters()
	sp.SpillPuts = c.Puts
	sp.SpillBytes = c.PutBytes
	res.Spill = sp
}
