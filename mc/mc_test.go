package mc

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/report"
	"repro/internal/workload"
)

const driverSrc = `
void kfree(void *p);
void *kmalloc(unsigned long n);
int handler(int *p, int n) {
    kfree(p);
    if (n > 4)
        return *p;
    return 0;
}`

func TestAnalyzerEndToEnd(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("drv.c", driverSrc)
	if err := a.LoadBundledChecker("free"); err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Fatalf("reports = %v", res.Reports)
	}
	r := res.Ranked()[0]
	if !strings.Contains(r.Msg, "after free") || r.Pos.Line != 7 {
		t.Errorf("report = %v", r)
	}
}

func TestAnalyzerErrors(t *testing.T) {
	a := NewAnalyzer()
	if _, err := a.RunContext(context.Background()); err == nil {
		t.Error("no sources: want error")
	}
	a.AddSource("x.c", "int x;")
	if _, err := a.RunContext(context.Background()); err == nil {
		t.Error("no checkers: want error")
	}
	if err := a.LoadBundledChecker("nope"); err == nil {
		t.Error("unknown checker: want error")
	}
	if err := a.LoadChecker("not metal"); err == nil {
		t.Error("bad checker source: want error")
	}
	a2 := NewAnalyzer()
	a2.AddSource("bad.c", "int f( {")
	a2.LoadBundledChecker("free")
	if _, err := a2.RunContext(context.Background()); err == nil {
		t.Error("parse error should propagate")
	}
}

func TestTwoPassPipeline(t *testing.T) {
	// Pass 1: emit ASTs; pass 2: reload and analyze — same result as
	// direct parsing (§6's architecture).
	data, err := EmitAST("drv.c", driverSrc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := LoadAST(data)
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer()
	a.AddAST(f)
	a.LoadBundledChecker("free")
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Pos.Line != 7 {
		t.Errorf("two-pass reports = %v", res.Reports)
	}
}

func TestMultipleCheckersShareComposition(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("m.c", `
void cli(void); void sti(void);
void do_sleep(void);
void bad(void) {
    cli();
    do_sleep();
    sti();
}`)
	a.MarkFunction("do_sleep", "blocking")
	if err := a.LoadBundledChecker("block"); err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Errorf("reports = %v", res.Reports)
	}
}

func TestHistorySuppression(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("drv.c", driverSrc)
	a.LoadBundledChecker("free")
	res, _ := a.RunContext(context.Background())
	if len(res.Reports) != 1 {
		t.Fatal("setup failed")
	}

	b := NewAnalyzer()
	b.AddSource("drv.c", driverSrc)
	b.LoadBundledChecker("free")
	b.SetHistory(res.Reports)
	res2, _ := b.RunContext(context.Background())
	if len(res2.Reports) != 0 {
		t.Errorf("history should suppress the known report; got %v", res2.Reports)
	}
}

func TestZRankedAndGrouped(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("z.c", `
void kfree(void *p);
void good1(int *a) { kfree(a); }
void good2(int *b) { kfree(b); }
void good3(int *c) { kfree(c); }
void bad(int *d) { kfree(d); kfree(d); }
`)
	a.LoadBundledChecker("free")
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ZRanked()) != 1 {
		t.Fatalf("reports = %v", res.Reports)
	}
	groups := res.Grouped()
	if len(groups) != 1 || groups[0].Rule != "kfree" {
		t.Errorf("groups = %v", groups)
	}
	if st := res.RuleStats["kfree"]; st.Examples < 3 || st.Violations != 1 {
		t.Errorf("rule stats = %+v", st)
	}
}

func TestBundledCheckersListed(t *testing.T) {
	names := map[string]bool{}
	for _, s := range BundledCheckers() {
		names[s.Name] = true
	}
	for _, want := range []string{"free", "lock", "null", "interrupt", "leak"} {
		if !names[want] {
			t.Errorf("bundled checker %q missing", want)
		}
	}
}

func TestCustomMetalChecker(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("c.c", `
int rand(void);
int weak_key(void) {
    return rand();
}`)
	err := a.LoadChecker(`
sm rand_checker;
start:
    { rand() } ==> start, { err("rand() is not cryptographically secure"); classify("SECURITY"); }
;`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 || res.Reports[0].Class != report.ClassSecurity {
		t.Errorf("reports = %v", res.Reports)
	}
}

// TestE11SuitePrecision is the headline end-to-end experiment: the
// full checker suite over a seeded multi-file tree must find every
// seeded bug with no false positives (see EXPERIMENTS.md E11).
func TestE11SuitePrecision(t *testing.T) {
	srcs, bugs := workload.MixedTree(4, 25, 2002)
	kindToChecker := map[string]string{
		"use-after-free": "free_checker",
		"double-free":    "free_checker",
		"missing-unlock": "lock_checker",
		"null-deref":     "null_checker",
		"leak":           "leak_checker",
		"interrupt":      "interrupt_checker",
	}
	buggy := map[string]string{}
	for _, b := range bugs {
		buggy[b.Func] = b.Kind
	}

	a := NewAnalyzer()
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, c := range []string{"free", "lock", "null", "leak", "interrupt"} {
		if err := a.LoadBundledChecker(c); err != nil {
			t.Fatal(err)
		}
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	hit := map[string]bool{}
	for _, r := range res.Reports {
		kind, isBuggy := buggy[r.Func]
		if !isBuggy || kindToChecker[kind] != r.Checker {
			t.Errorf("false positive: %s (func %s)", r, r.Func)
			continue
		}
		hit[r.Func] = true
	}
	for _, b := range bugs {
		if !hit[b.Func] {
			t.Errorf("missed seeded %s in %s (line %d)", b.Kind, b.Func, b.Line)
		}
	}
}

// TestTutorialDMAChecker pins the checker developed in TUTORIAL.md.
func TestTutorialDMAChecker(t *testing.T) {
	checker := `
sm dma_checker;
state decl any_pointer buf;
decl any_expr dev;

start:
    { dma_map(dev, buf) } ==> buf.mapped
;

buf.mapped:
    { dma_unmap(dev, buf) } ==> buf.stop, { example("dma"); }
  | { dma_map(dev, buf) }   ==> buf.stop,
        { rule("dma"); err("%s mapped twice", mc_identifier(buf)); violation("dma"); }
  | $end_of_path$           ==> buf.stop,
        { rule("dma"); err("%s still DMA-mapped at end of path", mc_identifier(buf)); violation("dma"); }
;

buf.mapped:
    { dma_try_map(dev, buf) } ==> true=buf.mapped, false=buf.stop
;
`
	src := `
void dma_map(int dev, char *buf);
void dma_unmap(int dev, char *buf);
int dma_try_map(int dev, char *buf);
void ok(int dev, char *b) {
    dma_map(dev, b);
    dma_unmap(dev, b);
}
void leak(int dev, char *b) {
    dma_map(dev, b);
}
void twice(int dev, char *b) {
    dma_map(dev, b);
    dma_map(dev, b);
}`
	a := NewAnalyzer()
	a.AddSource("drv.c", src)
	if err := a.LoadChecker(checker); err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sawLeak, sawTwice bool
	for _, r := range res.Reports {
		switch {
		case r.Func == "leak" && strings.Contains(r.Msg, "still DMA-mapped"):
			sawLeak = true
		case r.Func == "twice" && strings.Contains(r.Msg, "mapped twice"):
			sawTwice = true
		case r.Func == "ok":
			t.Errorf("clean function flagged: %s", r)
		}
	}
	if !sawLeak || !sawTwice {
		t.Errorf("tutorial checker misbehaves: %v", res.Reports)
	}
	if st := res.RuleStats["dma"]; st.Examples != 1 || st.Violations != 2 {
		t.Errorf("dma rule stats = %+v", st)
	}
}

func TestAddFileAndDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "one.c"), []byte(`
void kfree(void *p);
int f(int *p) { kfree(p); return *p; }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "two.c"), []byte("int g(void) { return 0; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("not C"), 0o644); err != nil {
		t.Fatal(err)
	}

	a := NewAnalyzer()
	if err := a.AddDirectory(dir); err != nil {
		t.Fatal(err)
	}
	a.LoadBundledChecker("free")
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 1 {
		t.Errorf("reports = %v", res.Reports)
	}
	if len(res.Program.All) != 2 {
		t.Errorf("functions = %d (txt file must be skipped)", len(res.Program.All))
	}

	b := NewAnalyzer()
	if err := b.AddFile(filepath.Join(dir, "one.c")); err != nil {
		t.Fatal(err)
	}
	b.LoadBundledChecker("free")
	res2, err := b.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Reports) != 1 {
		t.Errorf("AddFile reports = %v", res2.Reports)
	}

	if err := b.AddFile(filepath.Join(dir, "missing.c")); err == nil {
		t.Error("missing file should error")
	}
	if err := b.AddDirectory(filepath.Join(dir, "nosuch")); err == nil {
		t.Error("missing directory should error")
	}
}

func TestEmitASTErrors(t *testing.T) {
	if _, err := EmitAST("bad.c", "int f( {"); err == nil {
		t.Error("parse error should propagate from EmitAST")
	}
}

func TestResultInferPairs(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("p.c", `
void acq(void) {}
void rel(void) {}
void u1(void) { acq(); rel(); }
void u2(void) { acq(); rel(); }
void u3(void) { acq(); }
`)
	a.LoadBundledChecker("free")
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pairs := res.InferPairs(func(n string) bool { return n == "acq" || n == "rel" })
	if len(pairs) == 0 || pairs[0].Rule != "acq->rel" {
		t.Errorf("pairs = %v", pairs)
	}
	if pairs[0].Examples != 2 || pairs[0].Violations != 1 {
		t.Errorf("evidence = %d/%d", pairs[0].Examples, pairs[0].Violations)
	}
}
