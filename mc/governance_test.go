package mc

// Governance tests at the public-API layer (DESIGN.md §9): panicking
// Go-callout checkers are isolated per checker, budgets degrade
// instead of wedging, cancellation is prompt, and degraded units never
// enter the incremental cache. All of this must hold under -race.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/pattern"
	"repro/internal/workload"
)

// panickyChecker fires a Go callout that panics — a native-extension
// bug the engine must contain.
const panickyChecker = `
sm panicky;
state decl any_pointer v;
decl any_arguments rest;

start:
    { kfree(v) } ==> v.freed
;

v.freed:
    { printk(rest) } && ${ boom(v) } ==> v.stop, { err("never emitted"); }
;
`

const victimSrc = `
void kfree(void *p);
int printk(const char *fmt, ...);
int f(int *p) {
    kfree(p);
    printk("freed %p\n", p);
    return *p;
}`

func loadPanicky(t *testing.T, a *Analyzer) {
	t.Helper()
	err := a.LoadCheckerWithCallouts(panickyChecker, map[string]Callout{
		"boom": func(ctx *pattern.Ctx, args []pattern.CalloutArg) bool {
			panic("callout bug: boom() invoked")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPanickingCalloutIsolatedPerChecker: the crashing checker lands
// in Result.Failures while the healthy free checker's reports arrive
// intact, and the analyzer object stays usable for another run.
func TestPanickingCalloutIsolatedPerChecker(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("victim.c", victimSrc)
	if err := a.LoadBundledChecker("free"); err != nil {
		t.Fatal(err)
	}
	loadPanicky(t, a)

	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatalf("run with contained panic returned error: %v", err)
	}
	if len(res.Failures) != 1 || res.Failures[0].Checker != "panicky" {
		t.Fatalf("failures = %+v, want one for checker panicky", res.Failures)
	}
	if !strings.Contains(res.Failures[0].Panic, "boom() invoked") {
		t.Errorf("panic value lost: %q", res.Failures[0].Panic)
	}
	free := 0
	for _, r := range res.Reports {
		if r.Checker == "free_checker" {
			free++
		}
	}
	if free == 0 {
		t.Errorf("healthy checker's reports lost: %v", res.Reports)
	}

	// Same analyzer, next run: still functional (fresh engines per run).
	res2, err := a.RunContext(context.Background())
	if err != nil || len(res2.Failures) != 1 {
		t.Errorf("analyzer unusable after contained panic: %v %+v", err, res2)
	}
}

// explosionConfig is a path-explosion setup: block caching and FPP off
// so the diamond chain really explores 2^n paths.
func explosionConfig(budgets Budgets) RunConfig {
	opts := DefaultOptions()
	opts.BlockCache = false
	opts.FPP = false
	return RunConfig{Options: &opts, Budgets: budgets}
}

func TestPathExplosionBudgetDegrades(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("d.c", workload.DiamondChain(12).Source)
	if err := a.LoadBundledChecker("free"); err != nil {
		t.Fatal(err)
	}
	if err := a.Configure(explosionConfig(Budgets{FuncBlocks: 100})); err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatalf("budget-degraded run returned error: %v", err)
	}
	if !res.Degraded || len(res.Degradations) == 0 {
		t.Fatalf("path explosion under budget not degraded: %+v", res)
	}
	if res.Degradations[0].Kind != "func-blocks" {
		t.Errorf("unexpected degradation kind: %+v", res.Degradations)
	}
}

func TestPreCancelledContext(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("v.c", victimSrc)
	if err := a.LoadBundledChecker("free"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := a.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled run took %v", d)
	}
	// The analyzer is still usable with a live context.
	if res, err := a.RunContext(context.Background()); err != nil || len(res.Reports) == 0 {
		t.Errorf("analyzer unusable after cancellation: %v", err)
	}
}

func TestConfigureTimeoutExpires(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("d.c", workload.DiamondChain(18).Source)
	if err := a.LoadBundledChecker("free"); err != nil {
		t.Fatal(err)
	}
	cfg := explosionConfig(Budgets{})
	cfg.Timeout = 10 * time.Millisecond
	if err := a.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := a.RunContext(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("timed-out run took %v to return", d)
	}
}

// TestDegradedUnitNeverCached: a degraded unit must not be written to
// the store — a warm re-run finds nothing to replay.
func TestDegradedUnitNeverCached(t *testing.T) {
	store := cache.NewMemStore()
	run := func() *Result {
		a := NewAnalyzer()
		a.AddSource("d.c", workload.DiamondChain(12).Source)
		if err := a.LoadBundledChecker("free"); err != nil {
			t.Fatal(err)
		}
		cfg := explosionConfig(Budgets{FuncBlocks: 100})
		cfg.CacheStore = store
		if err := a.Configure(cfg); err != nil {
			t.Fatal(err)
		}
		res, err := a.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if !first.Degraded {
		t.Fatal("run under tight budget not degraded")
	}
	second := run()
	if !second.Degraded || second.Incr.UnitsReplayed != 0 {
		t.Errorf("degraded unit was cached: replayed=%d", second.Incr.UnitsReplayed)
	}
}

// TestCompleteRunStillCached: the degraded-never-cached rule must not
// break normal caching — an identical budget that never trips caches
// and replays as usual.
func TestCompleteRunStillCached(t *testing.T) {
	store := cache.NewMemStore()
	run := func() *Result {
		a := NewAnalyzer()
		a.AddSource("v.c", victimSrc)
		if err := a.LoadBundledChecker("free"); err != nil {
			t.Fatal(err)
		}
		cfg := RunConfig{Budgets: Budgets{FuncBlocks: 1 << 40}, CacheStore: store}
		if err := a.Configure(cfg); err != nil {
			t.Fatal(err)
		}
		res, err := a.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if first := run(); first.Degraded {
		t.Fatal("generous budget tripped unexpectedly")
	}
	if second := run(); second.Incr.UnitsReplayed == 0 {
		t.Error("complete governed run was not cached")
	}
}

// TestFailedCheckerRunNotCached: a warm run after a panicking-checker
// run must re-run the healthy checkers' units... unless they were
// complete. Only the panicking checker is uncacheable (it has
// callouts), so the free checker's complete unit DOES replay — the
// failure gate is per unit, not per run.
func TestFailedCheckerRunNotCached(t *testing.T) {
	store := cache.NewMemStore()
	run := func() *Result {
		a := NewAnalyzer()
		a.AddSource("v.c", victimSrc)
		if err := a.LoadBundledChecker("free"); err != nil {
			t.Fatal(err)
		}
		loadPanicky(t, a)
		if err := a.Configure(RunConfig{CacheStore: store}); err != nil {
			t.Fatal(err)
		}
		res, err := a.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first := run()
	if len(first.Failures) != 1 {
		t.Fatalf("failures = %+v", first.Failures)
	}
	second := run()
	if len(second.Failures) != 1 {
		t.Errorf("warm run lost the failure: %+v", second.Failures)
	}
	// The healthy checker's unit was complete and replays; the
	// panicking checker re-runs live every time (native callouts).
	if second.Incr.UnitsReplayed == 0 {
		t.Error("healthy checker's complete unit did not replay")
	}
}

// TestAnalyzeContextEndToEnd drives the consolidated one-call API.
func TestAnalyzeContextEndToEnd(t *testing.T) {
	res, err := AnalyzeContext(context.Background(),
		RunConfig{Jobs: 2, Timeout: time.Minute},
		map[string]string{"v.c": victimSrc}, "free", "null")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 || res.Degraded || len(res.Failures) != 0 {
		t.Errorf("unexpected result: %+v", res)
	}
	// Unknown checker surfaces as a load error.
	if _, err := AnalyzeContext(context.Background(), RunConfig{},
		map[string]string{"v.c": victimSrc}, "no-such"); err == nil {
		t.Error("unknown checker did not error")
	}
}

// TestConfigureIsTheOnlySurface pins the post-migration contract: one
// Configure call covers options, parallelism, and cache wiring — the
// per-field setters from earlier releases no longer exist.
func TestConfigureIsTheOnlySurface(t *testing.T) {
	a := NewAnalyzer()
	a.AddSource("v.c", victimSrc)
	if err := a.LoadBundledChecker("free"); err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	if err := a.Configure(RunConfig{
		Options:    &opts,
		Jobs:       2,
		CacheStore: cache.NewMemStore(),
	}); err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil || len(res.Reports) == 0 {
		t.Errorf("configured analyzer broken: %v", err)
	}
}
