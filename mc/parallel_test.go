package mc

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workload"
)

// runSuite analyzes the given sources with every bundled checker at the
// given parallelism and returns the result.
func runSuite(t *testing.T, srcs map[string]string, jobs int) *Result {
	t.Helper()
	a := NewAnalyzer()
	if err := a.Configure(RunConfig{Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, s := range BundledCheckers() {
		if err := a.LoadBundledChecker(s.Name); err != nil {
			t.Fatal(err)
		}
	}
	a.MarkFunction("net_wait", "blocking")
	a.MarkFunction("disk_sync", "blocking")
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// reportKey captures every observable field of a report, including the
// full why-trace, so the comparison is report-for-report exact.
func reportKey(r *Report) string {
	return fmt.Sprintf("%s|%s|%s|%s|%v|%d|%d|%v|%d|%s|%s|%s",
		r.Checker, r.Rule, r.Msg, r.Func, r.Vars,
		r.Conditionals, r.SynonymDepth, r.Interprocedural, r.CallChain,
		r.Class, r.Pos, strings.Join(r.Trace, " ;; "))
}

// TestParallelRunMatchesSequential is the tentpole acceptance test: on
// the E11 seeded tree with the full bundled suite, -j 4 must produce
// output bit-identical to the sequential run — same reports in the same
// order with the same why-traces, same RuleStats, same Stats.
func TestParallelRunMatchesSequential(t *testing.T) {
	srcs, _ := workload.MixedTree(4, 25, 2002)
	seq := runSuite(t, srcs, 1)
	par := runSuite(t, srcs, 4)

	if len(seq.Reports) == 0 {
		t.Fatal("sequential run produced no reports; workload regressed")
	}
	if len(par.Reports) != len(seq.Reports) {
		t.Fatalf("report count: parallel %d, sequential %d",
			len(par.Reports), len(seq.Reports))
	}
	for i := range seq.Reports {
		s, p := reportKey(seq.Reports[i]), reportKey(par.Reports[i])
		if s != p {
			t.Errorf("report %d differs:\n  seq: %s\n  par: %s", i, s, p)
		}
	}
	// The ranked views must agree too (ranking is a pure function of
	// the reports, so this pins the ordering end to end).
	seqRanked, parRanked := seq.Ranked(), par.Ranked()
	for i := range seqRanked {
		if reportKey(seqRanked[i]) != reportKey(parRanked[i]) {
			t.Errorf("ranked report %d differs", i)
		}
	}
	if !reflect.DeepEqual(seq.RuleStats, par.RuleStats) {
		t.Errorf("RuleStats differ:\n  seq: %v\n  par: %v", seq.RuleStats, par.RuleStats)
	}
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Errorf("Stats differ")
	}
}

// TestParallelismLevelsAgree sweeps worker counts; every level must
// reproduce the -j 1 output exactly.
func TestParallelismLevelsAgree(t *testing.T) {
	srcs, _ := workload.MixedTree(3, 12, 77)
	base := runSuite(t, srcs, 1)
	for _, j := range []int{2, 3, 8} {
		res := runSuite(t, srcs, j)
		if len(res.Reports) != len(base.Reports) {
			t.Fatalf("-j %d: report count %d, want %d", j, len(res.Reports), len(base.Reports))
		}
		for i := range base.Reports {
			if reportKey(res.Reports[i]) != reportKey(base.Reports[i]) {
				t.Errorf("-j %d: report %d differs", j, i)
			}
		}
	}
}

const pkSpySrc = `
sm pkspy;
decl any_fn_call fn;
decl any_arguments args;
start:
    { fn(args) } && ${ mc_fn_marked(fn, "pathkill") } ==> start, { err("call to marked fn"); }
;`

// TestPhaseOrderingSemantics pins the §3.2 composition contract under
// concurrency: a checker sees exactly the marks written by checkers
// loaded before it. The pkspy consumer reports marked calls, so loaded
// after panic-marker it fires, loaded before it stays silent — at every
// parallelism level.
func TestPhaseOrderingSemantics(t *testing.T) {
	src := `
void panic(void);
void die(int x) { if (x) { panic(); } }
`
	count := func(annotatorFirst bool, jobs int) int {
		a := NewAnalyzer()
		if err := a.Configure(RunConfig{Jobs: jobs}); err != nil {
			t.Fatal(err)
		}
		a.AddSource("t.c", src)
		load := func(first bool) {
			if first {
				if err := a.LoadBundledChecker("panic-marker"); err != nil {
					t.Fatal(err)
				}
			} else if err := a.LoadChecker(pkSpySrc); err != nil {
				t.Fatal(err)
			}
		}
		load(annotatorFirst)
		load(!annotatorFirst)
		res, err := a.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, r := range res.Reports {
			if r.Checker == "pkspy" {
				n++
			}
		}
		return n
	}
	for _, j := range []int{1, 4} {
		if got := count(true, j); got == 0 {
			t.Errorf("-j %d: consumer after annotator saw no marks", j)
		}
		if got := count(false, j); got != 0 {
			t.Errorf("-j %d: consumer before annotator saw %d marks, want 0", j, got)
		}
	}
}

// TestSortedMarksDeterministic pins the marks-order bugfix: marks apply
// in sorted name order with per-name registration order, not map order.
func TestSortedMarksDeterministic(t *testing.T) {
	a := NewAnalyzer()
	a.MarkFunction("zeta", "blocking")
	a.MarkFunction("alpha", "pathkill")
	a.MarkFunction("mid", "blocking")
	a.MarkFunction("alpha", "blocking")
	want := []markEntry{
		{"alpha", "pathkill"},
		{"alpha", "blocking"},
		{"mid", "blocking"},
		{"zeta", "blocking"},
	}
	for trial := 0; trial < 20; trial++ {
		if got := a.sortedMarks(); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: sortedMarks = %v, want %v", trial, got, want)
		}
	}
}

// TestAddFileKeepsSameBasenameDistinct pins the AddFile bugfix:
// registering a/util.c and b/util.c must analyze both, and re-adding a
// path already registered is an error.
func TestAddFileKeepsSameBasenameDistinct(t *testing.T) {
	dir := t.TempDir()
	for sub, body := range map[string]string{
		"a": "void fa(int *p) { kfree(p); *p = 1; }\n",
		"b": "void fb(int *q) { kfree(q); *q = 2; }\n",
	} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, sub, "util.c"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	a := NewAnalyzer()
	if err := a.AddFile(filepath.Join(dir, "a", "util.c")); err != nil {
		t.Fatal(err)
	}
	if err := a.AddFile(filepath.Join(dir, "b", "util.c")); err != nil {
		t.Fatalf("same-basename file from another directory rejected: %v", err)
	}
	if err := a.AddFile(filepath.Join(dir, "a", "util.c")); err == nil {
		t.Fatal("re-adding the same path did not error")
	}
	if err := a.LoadBundledChecker("free"); err != nil {
		t.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, r := range res.Reports {
		got[r.Func] = true
	}
	if !got["fa"] || !got["fb"] {
		t.Fatalf("reports cover funcs %v, want both fa and fb (one file silently overwrote the other)", got)
	}
}
