package mc

// Compiled multi-checker dispatch (DESIGN.md §11) end-to-end contract:
// MultiDispatch is a pure accelerator. With it on or off, at any
// parallelism level, the full bundled suite over the seeded workload
// must produce the same reports in the same order with the same
// ranking — and the same holds through the incremental-cache path.

import (
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/workload"
)

func runSuiteDispatch(t *testing.T, srcs map[string]string, jobs int, dispatch bool) *Result {
	t.Helper()
	a := NewAnalyzer()
	opts := DefaultOptions()
	opts.MultiDispatch = dispatch
	if err := a.Configure(RunConfig{Options: &opts, Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, s := range BundledCheckers() {
		if err := a.LoadBundledChecker(s.Name); err != nil {
			t.Fatal(err)
		}
	}
	a.MarkFunction("net_wait", "blocking")
	a.MarkFunction("disk_sync", "blocking")
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMultiDispatchMatchesCompat: dispatch on vs off, -j 1 and -j 8,
// report-for-report identical including ranked order.
func TestMultiDispatchMatchesCompat(t *testing.T) {
	srcs, _ := workload.MixedTree(4, 25, 2002)
	base := runSuiteDispatch(t, srcs, 1, false)
	if len(base.Reports) == 0 {
		t.Fatal("compat run produced no reports; workload regressed")
	}
	for _, jobs := range []int{1, 8} {
		res := runSuiteDispatch(t, srcs, jobs, true)
		if len(res.Reports) != len(base.Reports) {
			t.Fatalf("-j %d dispatch: report count %d, want %d",
				jobs, len(res.Reports), len(base.Reports))
		}
		for i := range base.Reports {
			if got, want := reportKey(res.Reports[i]), reportKey(base.Reports[i]); got != want {
				t.Errorf("-j %d dispatch: report %d differs:\n  got:  %s\n  want: %s",
					jobs, i, got, want)
			}
		}
		baseRanked, ranked := base.Ranked(), res.Ranked()
		for i := range baseRanked {
			if reportKey(baseRanked[i]) != reportKey(ranked[i]) {
				t.Errorf("-j %d dispatch: ranked report %d differs", jobs, i)
			}
		}
	}
}

// TestMultiDispatchThroughCache: the cache-aware path compiles the
// same automaton for its live engines; cold and warm cached runs with
// dispatch on must match the uncached compat run.
func TestMultiDispatchThroughCache(t *testing.T) {
	srcs, _ := workload.MixedTree(3, 12, 77)
	base := runSuiteDispatch(t, srcs, 1, false)

	store := cache.NewMemStore()
	run := func() *Result {
		a := NewAnalyzer()
		opts := DefaultOptions()
		opts.MultiDispatch = true
		if err := a.Configure(RunConfig{Options: &opts, CacheStore: store}); err != nil {
			t.Fatal(err)
		}
		for name, src := range srcs {
			a.AddSource(name, src)
		}
		for _, s := range BundledCheckers() {
			if err := a.LoadBundledChecker(s.Name); err != nil {
				t.Fatal(err)
			}
		}
		a.MarkFunction("net_wait", "blocking")
		a.MarkFunction("disk_sync", "blocking")
		res, err := a.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for pass, res := range []*Result{run(), run()} {
		if len(res.Reports) != len(base.Reports) {
			t.Fatalf("cached pass %d: report count %d, want %d",
				pass, len(res.Reports), len(base.Reports))
		}
		for i := range base.Reports {
			if reportKey(res.Reports[i]) != reportKey(base.Reports[i]) {
				t.Errorf("cached pass %d: report %d differs", pass, i)
			}
		}
	}
}
