package mc_test

// Cold/warm equivalence property tests for the incremental cache
// (DESIGN.md §8): a warm run over an edited tree must be
// byte-identical to a fresh cold run of the same tree — ranked
// output, z-ranked output, rule groups, and engine statistics alike.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/workload"
	"repro/mc"
)

var incrCheckers = []string{"free", "lock", "null", "leak", "interrupt", "panic-marker", "block"}

func newIncrAnalyzer(t *testing.T, srcs map[string]string, jobs int, store cache.Store) *mc.Analyzer {
	t.Helper()
	a := mc.NewAnalyzer()
	if err := a.Configure(mc.RunConfig{Jobs: jobs, CacheStore: store}); err != nil {
		t.Fatal(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, c := range incrCheckers {
		if err := a.LoadBundledChecker(c); err != nil {
			t.Fatal(err)
		}
	}
	// Pre-marks exercise the composition channel in the cache keys.
	a.MarkFunction("printk", "blocking")
	return a
}

// outputDigest renders everything user-visible about a result.
func outputDigest(res *mc.Result) string {
	var sb strings.Builder
	for _, r := range res.Ranked() {
		sb.WriteString(r.Detailed())
	}
	sb.WriteString("== z ==\n")
	for _, r := range res.ZRanked() {
		sb.WriteString(r.Detailed())
	}
	sb.WriteString("== groups ==\n")
	for _, g := range res.Grouped() {
		fmt.Fprintf(&sb, "%s z=%.6f n=%d\n", g.Rule, g.Z, len(g.Reports))
	}
	sb.WriteString("== stats ==\n")
	names := make([]string, 0, len(res.Stats))
	for n := range res.Stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&sb, "%s: %+v\n", n, res.Stats[n])
	}
	return sb.String()
}

func runDigest(t *testing.T, srcs map[string]string, jobs int, store cache.Store) (string, *mc.Result) {
	t.Helper()
	res, err := newIncrAnalyzer(t, srcs, jobs, store).RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return outputDigest(res), res
}

func TestCachedColdMatchesPlain(t *testing.T) {
	srcs, _ := workload.MixedTree(2, 8, 7)
	plain, _ := runDigest(t, srcs, 2, nil)
	cached, res := runDigest(t, srcs, 2, cache.NewMemStore())
	if cached != plain {
		t.Errorf("cold cached output differs from plain:\n%s", firstDiff(plain, cached))
	}
	if res.Incr == nil {
		t.Fatal("cached run has no IncrStats")
	}
	if res.Incr.UnitsReplayed != 0 {
		t.Errorf("cold run replayed %d units", res.Incr.UnitsReplayed)
	}
	if res.Incr.CachePuts == 0 {
		t.Error("cold run stored nothing")
	}
}

func TestWarmIdenticalRunReplaysEverything(t *testing.T) {
	srcs, _ := workload.MixedTree(2, 8, 7)
	store := cache.NewMemStore()
	cold, _ := runDigest(t, srcs, 2, store)
	warm, res := runDigest(t, srcs, 2, store)
	if warm != cold {
		t.Errorf("warm output differs:\n%s", firstDiff(cold, warm))
	}
	if res.Incr.FuncsAnalyzedLive != 0 {
		t.Errorf("unchanged warm run analyzed %d functions live", res.Incr.FuncsAnalyzedLive)
	}
	if res.Incr.FilesReparsed != 0 {
		t.Errorf("unchanged warm run reparsed %d files", res.Incr.FilesReparsed)
	}
	if res.Incr.FuncsChanged != 0 || res.Incr.FuncsInvalidated != 0 {
		t.Errorf("unchanged warm run invalidated %d/%d functions",
			res.Incr.FuncsChanged, res.Incr.FuncsInvalidated)
	}
}

// TestIncrementalProperty is the cold/warm equivalence property test:
// apply a deterministic random edit sequence, and after every edit
// assert the warm incremental run is byte-identical to a fresh cold
// run. Run with -race and -j > 1 via `make race`.
func TestIncrementalProperty(t *testing.T) {
	srcs, _ := workload.MixedTree(3, 10, 2002)
	store := cache.NewMemStore()
	if _, err := newIncrAnalyzer(t, srcs, 4, store).RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}

	edits := workload.RandomEdits(srcs, []string{"f0_fn_0", "f1_fn_1"}, 6, 99)
	if len(edits) != 6 {
		t.Fatalf("got %d edits", len(edits))
	}
	for _, e := range edits {
		srcs = e.Apply(srcs)
		warm, wres := runDigest(t, srcs, 4, store)
		cold, _ := runDigest(t, srcs, 4, nil)
		if warm != cold {
			t.Fatalf("after %q: warm output differs from cold:\n%s", e.Name, firstDiff(cold, warm))
		}
		if wres.Incr.FuncsChanged == 0 {
			t.Errorf("after %q: manifest diff saw no change", e.Name)
		}
	}
}

// TestBodyTweakReplaysMostUnits pins the incremental win the mcbench
// incr experiment measures: a one-function body edit re-analyzes far
// fewer functions than a cold run.
func TestBodyTweakReplaysMostUnits(t *testing.T) {
	srcs, _ := workload.MixedTree(3, 10, 2002)
	store := cache.NewMemStore()
	_, cold := runDigest(t, srcs, 2, store)

	srcs = workload.TweakBody("tree_1.c").Apply(srcs)
	warmDigest, warm := runDigest(t, srcs, 2, store)
	plainDigest, _ := runDigest(t, srcs, 2, nil)
	if warmDigest != plainDigest {
		t.Fatalf("warm output differs from cold:\n%s", firstDiff(plainDigest, warmDigest))
	}
	coldLive := cold.Incr.FuncsAnalyzedLive
	warmLive := warm.Incr.FuncsAnalyzedLive
	if warmLive == 0 || coldLive/warmLive < 5 {
		t.Errorf("body tweak: %d live analyses warm vs %d cold (want >= 5x reduction)",
			warmLive, coldLive)
	}
	if warm.Incr.UnitsReplayed == 0 {
		t.Error("body tweak replayed no units")
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  cold: %s\n  warm: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
