package mc

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cc"
	"repro/internal/core"
)

// This file is the parallel execution layer of Analyzer.Run: pass-1
// parsing fans out over a worker pool, and checker engines run
// concurrently within the phases planned by core.PlanPhases. The
// scheduling never changes observable output — sources are parsed into
// name-sorted slots, engines only share the read-only prog.Program and
// the mutex-guarded core.Shared store, and the merge in Run reads
// engines back in checker load order.

// parseSources runs pass 1: every registered source is parsed, fanned
// out over the worker pool. Pre-parsed ASTs (AddAST) pass through
// untouched. Errors surface exactly as in a sequential name-ordered
// parse: the failure for the first (sorted) offending name wins.
func (a *Analyzer) parseSources() ([]*cc.File, error) {
	files := append([]*cc.File(nil), a.files...)
	names := make([]string, 0, len(a.srcs))
	for n := range a.srcs {
		names = append(names, n)
	}
	sort.Strings(names)

	parsed := make([]*cc.File, len(names))
	errs := make([]error, len(names))
	workers := a.parallelism()
	if workers > len(names) {
		workers = len(names)
	}
	if workers > 1 {
		idxCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					parsed[i], errs[i] = cc.ParseFile(names[i], a.srcs[names[i]])
				}
			}()
		}
		for i := range names {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
	} else {
		for i, n := range names {
			parsed[i], errs[i] = cc.ParseFile(n, a.srcs[n])
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", names[i], err)
		}
	}
	return append(files, parsed...), nil
}

// markEntry is one pre-annotation: MarkFunction(name, key).
type markEntry struct {
	name, key string
}

// sortedMarks flattens the mark map into a deterministic application
// order: names sorted, keys in registration order per name. Ranging
// over the map directly would hand marks to the engine in a different
// order each run — the determinism hazard §5.1 forbids.
func (a *Analyzer) sortedMarks() []markEntry {
	names := make([]string, 0, len(a.marks))
	for n := range a.marks {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []markEntry
	for _, n := range names {
		for _, k := range a.marks[n] {
			out = append(out, markEntry{name: n, key: k})
		}
	}
	return out
}

// runPhase executes one phase's engines, at most a.parallelism() at a
// time. Slots are acquired in load order, so -j 1 degenerates to the
// exact sequential schedule. Each engine polls ctx during traversal;
// panics are contained per engine inside RunContext (governance
// layer), so a crashing checker never kills a worker goroutine.
func (a *Analyzer) runPhase(ctx context.Context, engines []*core.Engine, phase []int) {
	if len(phase) == 1 {
		engines[phase[0]].RunContext(ctx)
		return
	}
	sem := make(chan struct{}, a.parallelism())
	var wg sync.WaitGroup
	for _, i := range phase {
		sem <- struct{}{}
		wg.Add(1)
		go func(en *core.Engine) {
			defer wg.Done()
			defer func() { <-sem }()
			en.RunContext(ctx)
		}(engines[i])
	}
	wg.Wait()
}
