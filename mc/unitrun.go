package mc

// Fleet unit dispatch (DESIGN.md §15): the analyzer-side half of the
// coordinator/worker protocol. When RunConfig.UnitRunner is set, the
// cached run path offers each phase's cache-miss units to it as a
// UnitRun batch before running them locally. Workers are "fill this
// cache key" services: a worker computes the complete unit entry and
// writes it to the shared store under the job's key; the coordinator
// then re-probes the store and replays whatever appeared through the
// ordinary (byte-identical-pinned) replay path. Keys the runner did
// not fill — worker loss, degraded remote runs, transport failures —
// simply stay misses and run locally, so the fallback path is the
// normal path and no new consistency argument is needed.

import (
	"context"

	"repro/internal/core"
)

// MarkEvent re-exports one composition-mark record (core.MarkEvent).
// A UnitJob carries the annotation store visible at its phase barrier
// as sorted MarkEvents; marks are an idempotent boolean set, so the
// worker reconstructs the same store by re-applying them.
type MarkEvent = core.MarkEvent

// UnitJob is one cache-miss (checker, unit) pair offered to the unit
// runner. Funcs and Roots are prog.FuncIDs into the program built from
// UnitRun.Files; CheckerSrc is the full metal source (checkers with
// native Go callouts are never offered — their code cannot ride a
// wire). Key is the content-addressed unit key the worker must fill.
type UnitJob struct {
	Key        string      `json:"key"`
	CheckerSrc string      `json:"checker_src"`
	CheckerFP  string      `json:"checker_fp"`
	Funcs      []string    `json:"funcs"`
	Roots      []string    `json:"roots"`
	Marks      []MarkEvent `json:"marks,omitempty"`
}

// UnitRun is one phase's batch of cache-miss units. Files is the full
// source set (workers rebuild the whole program — unit fingerprints
// include the declaration environment, so a partial tree would re-key
// everything); Options are the coordinator's engine options (workers
// may zero MaxResidentMB: it is excluded from the options fingerprint
// and entries with or without inline summaries replay identically).
type UnitRun struct {
	TreeFP  string            `json:"tree_fp"`
	Files   map[string]string `json:"files"`
	Options Options           `json:"options"`
	Jobs    []UnitJob         `json:"jobs"`
}

// UnitRunner executes a UnitRun batch, filling cache keys as a side
// effect. An error (or any unfilled key) means those units run
// locally; it never fails the analysis.
type UnitRunner = func(ctx context.Context, run *UnitRun) error
