package mc

// Determinism property of the streaming mode (DESIGN.md §12): with a
// memory budget set, every configuration — any parallelism, through a
// cold or warm incremental cache, or none — must produce output
// byte-identical to the unbounded in-memory run. The matrix below also
// pins the cache-key design decision that MaxResidentMB is excluded
// from the options fingerprint: a store warmed by a streaming run
// replays under a non-streaming run and vice versa.

import (
	"context"
	"crypto/sha256"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/workload"
)

// streamRun analyzes srcs with the full bundled suite under the given
// parallelism, memory budget (0 = streaming off), and cache store
// (nil = plain path).
func streamRun(t *testing.T, srcs map[string]string, jobs, maxMB int, store cache.Store) *Result {
	t.Helper()
	a := NewAnalyzer()
	if err := a.Configure(RunConfig{
		Jobs:          jobs,
		MaxResidentMB: maxMB,
		CacheStore:    store,
	}); err != nil {
		t.Fatal(err)
	}
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	for _, s := range BundledCheckers() {
		if err := a.LoadBundledChecker(s.Name); err != nil {
			t.Fatal(err)
		}
	}
	a.MarkFunction("net_wait", "blocking")
	res, err := a.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// streamDigest hashes everything a user would diff: the ranked,
// why-traced reports plus the grouped z-statistics.
func streamDigest(res *Result) string {
	var sb strings.Builder
	for _, r := range res.Ranked() {
		sb.WriteString(r.Detailed())
	}
	for _, g := range res.Grouped() {
		fmt.Fprintf(&sb, "%s %.3f %d\n", g.Rule, g.Z, len(g.Reports))
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

// reportSetDigest hashes the raw emission-order report stream,
// deliberately ignoring the verdict fields and ranking: the
// feasibility pass reorders Ranked() by design (confirmed first,
// infeasible last) but must never add, remove, or reword a report.
func reportSetDigest(res *Result) string {
	var sb strings.Builder
	for _, r := range res.Reports {
		sb.WriteString(r.Detailed())
	}
	return fmt.Sprintf("%x", sha256.Sum256([]byte(sb.String())))
}

// TestVerifyDeterminismMatrix extends the streaming matrix to the
// feasibility pass (DESIGN.md §13): with the pass on or off, at any
// parallelism, through no cache, a cold cache, or a warm cache (where
// verdicts replay content-addressed), the report set must be
// byte-identical and the verdict assignment itself must be identical
// in every verify-on cell.
func TestVerifyDeterminismMatrix(t *testing.T) {
	pr := workload.FeasPopulation(24, 7)

	run := func(jobs int, store cache.Store, verify bool) (*Result, map[string]string) {
		t.Helper()
		a := NewAnalyzer()
		if err := a.Configure(RunConfig{Jobs: jobs, CacheStore: store}); err != nil {
			t.Fatal(err)
		}
		a.AddSource("feas.c", pr.Source)
		if err := a.LoadBundledChecker("free"); err != nil {
			t.Fatal(err)
		}
		res, err := a.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var verdicts map[string]string
		if verify {
			a.Verify(res, jobs)
			verdicts = map[string]string{}
			for _, r := range res.Reports {
				verdicts[r.Pos.String()+"|"+r.Msg] = r.Verdict
			}
		}
		return res, verdicts
	}

	refRes, _ := run(1, nil, false)
	ref := reportSetDigest(refRes)
	if len(refRes.Reports) == 0 {
		t.Fatal("reference run produced no reports; workload regressed")
	}

	var verdictRef map[string]string
	for _, verify := range []bool{false, true} {
		store := cache.NewMemStore()
		cells := []struct {
			name  string
			jobs  int
			store cache.Store
		}{
			{"nocache/-j1", 1, nil},
			{"nocache/-j8", 8, nil},
			{"cold/-j1", 1, store},
			{"warm/-j1", 1, store},
			{"warm/-j8", 8, store},
		}
		for _, c := range cells {
			name := fmt.Sprintf("verify=%v/%s", verify, c.name)
			res, verdicts := run(c.jobs, c.store, verify)
			if got := reportSetDigest(res); got != ref {
				t.Errorf("%s: report set differs from the verify-off reference", name)
			}
			if !verify {
				continue
			}
			if verdictRef == nil {
				verdictRef = verdicts
				continue
			}
			if len(verdicts) != len(verdictRef) {
				t.Fatalf("%s: %d verdicts, reference has %d", name, len(verdicts), len(verdictRef))
			}
			for k, v := range verdictRef {
				if verdicts[k] != v {
					t.Errorf("%s: verdict for %s = %q, reference %q", name, k, verdicts[k], v)
				}
			}
		}
	}
}

func TestStreamingDeterminismMatrix(t *testing.T) {
	srcs, _ := workload.MixedTree(3, 12, 7)

	refRes := streamRun(t, srcs, 1, 0, nil)
	ref := streamDigest(refRes)
	if len(refRes.Reports) == 0 {
		t.Fatal("reference run produced no reports; workload regressed")
	}
	if refRes.Spill != nil {
		t.Fatal("streaming off must leave Result.Spill nil")
	}

	check := func(name string, res *Result) {
		t.Helper()
		if got := streamDigest(res); got != ref {
			t.Errorf("%s: output differs from the in-memory reference", name)
		}
	}

	// Plain path, spill on/off at each parallelism.
	for _, jobs := range []int{1, 8} {
		check(fmt.Sprintf("plain/off/-j%d", jobs), streamRun(t, srcs, jobs, 0, nil))
		res := streamRun(t, srcs, jobs, 64, nil)
		check(fmt.Sprintf("plain/on/-j%d", jobs), res)
		sp := res.Spill
		if sp == nil {
			t.Fatalf("-j%d: streaming run reported no SpillStats", jobs)
		}
		if sp.Evictions == 0 || sp.SpillPuts == 0 || sp.SpillBytes == 0 || sp.ASTsReleased == 0 {
			t.Errorf("-j%d: streaming did not engage: %+v", jobs, sp)
		}
	}

	// Cached path: cold and warm, spill on/off, both parallelisms. The
	// warm stores are deliberately crossed — warmed streaming, replayed
	// non-streaming and vice versa — because MaxResidentMB is excluded
	// from the cache fingerprint (it is semantics-preserving), so the
	// two modes share entries.
	for _, warmMB := range []int{0, 64} {
		warmed := cache.NewMemStore()
		check(fmt.Sprintf("cached/cold/warm-mb=%d", warmMB), streamRun(t, srcs, 1, warmMB, warmed))
		for _, runMB := range []int{0, 64} {
			for _, jobs := range []int{1, 8} {
				name := fmt.Sprintf("cached/warm-mb=%d/run-mb=%d/-j%d", warmMB, runMB, jobs)
				res := streamRun(t, srcs, jobs, runMB, warmed)
				check(name, res)
				if res.Incr == nil || res.Incr.UnitsReplayed == 0 {
					t.Errorf("%s: nothing replayed from the warm store — modes do not share cache entries", name)
				}
			}
		}
	}
}
