package mc

// Incremental analysis (DESIGN.md §8): a cache-aware Run path that
// reuses pass-1 ASTs and whole-unit analysis results across runs.
//
// The unit of reuse is a weakly-connected component of the call graph
// (prog.Units): the engine's per-function state never crosses unit
// boundaries, so running each unit in a fresh engine and merging the
// per-root report segments in global root order reproduces the plain
// shared-engine output byte for byte. A unit entry is keyed by
// everything its analysis can observe — checker source, core.Options,
// the position-independent declaration environment, the composition
// marks visible at its phase start, and the content hashes of its
// member functions — so invalidation is implicit: an edit re-keys the
// changed functions' units and every untouched unit replays from
// cache.
//
// Three kinds of checker need coarser handling:
//   - checkers with custom Go callouts: native code is invisible to
//     the source fingerprint, so they always run live;
//   - self-coupled checkers (both mark_fn and mc_fn_marked): their
//     own marks flow across units within one run, so they cache as a
//     single whole-program unit;
//   - any checker when Options.MaxBlocks > 0: the traversal budget is
//     engine-global, so per-unit engines would diverge from the plain
//     path; they also fall back to a single whole-program unit.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/prog"
	"repro/internal/rank"
)

// setStore enables the analysis cache on an arbitrary store (e.g.
// cache.NewMemStore() for a resident daemon); Configure is the public
// way in (RunConfig.CacheDir / CacheStore). A nil store disables
// caching.
func (a *Analyzer) setStore(s cache.Store) {
	if s == nil {
		a.cacheStore = nil
		a.cacheMetrics = nil
		return
	}
	a.cacheMetrics = &cache.Metrics{}
	a.cacheStore = cache.WithMetrics(s, a.cacheMetrics)
}

// IncrStats reports what the cache-aware run did: per-phase wall
// times, replay-vs-live volumes, the manifest diff, and store
// traffic. It is the daemon's /metrics feed and the mcbench incr
// experiment's measurement.
type IncrStats struct {
	// Wall-clock nanoseconds per pipeline phase.
	ParseNanos   int64 `json:"parse_nanos"`
	BuildNanos   int64 `json:"build_nanos"`
	AnalyzeNanos int64 `json:"analyze_nanos"`
	MergeNanos   int64 `json:"merge_nanos"`

	// Pass-1 reuse.
	FilesReparsed int `json:"files_reparsed"`
	FilesReplayed int `json:"files_replayed"`

	// Unit reuse, counted per (checker, unit) pair. UnitsRemote is the
	// subset of UnitsReplayed that a fleet worker filled during this
	// run (a remote fill is replayed from the shared store like any
	// warm hit); replays with UnitsRemote == 0 came from prior runs.
	UnitsLive     int `json:"units_live"`
	UnitsReplayed int `json:"units_replayed"`
	UnitsRemote   int `json:"units_remote"`

	// Function analyses (traversal starts) performed live versus
	// replayed from cache — the experiment's headline ratio.
	FuncsAnalyzedLive     int `json:"funcs_analyzed_live"`
	FuncsAnalyzedReplayed int `json:"funcs_analyzed_replayed"`

	// Manifest diff against the previous run under this
	// configuration: functions whose content hash changed (or are
	// new), and the size of their transitive-caller closure.
	FuncsChanged     int `json:"funcs_changed"`
	FuncsInvalidated int `json:"funcs_invalidated"`

	// Store traffic.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CachePuts   int64 `json:"cache_puts"`
}

// unitTask is one (checker, unit) work item in a phase.
type unitTask struct {
	ci    int
	funcs []*prog.Function
	roots []*prog.Function
	key   string           // "" = uncacheable, always live
	entry *cache.UnitEntry // non-nil = replay
	eng   *core.Engine     // set after a live run
	runs  []core.RootRun   // the live run's per-root report segments
}

// runCached is Run with the cache enabled. Governance rules
// (DESIGN.md §9): a unit whose live run was degraded (budget hit or
// cancellation) or whose checker panicked is never written to the
// store — a cached entry always represents a complete analysis — and
// the manifest is only saved for complete runs.
func (a *Analyzer) runCached(ctx context.Context) (*Result, error) {
	incr := &IncrStats{}

	t0 := time.Now()
	files, err := a.parseCachedSources(incr)
	if err != nil {
		return nil, err
	}
	incr.ParseNanos = time.Since(t0).Nanoseconds()

	t0 = time.Now()
	p := prog.Build(files...)
	units := p.Units()

	// Fingerprints. optsFP covers every engine switch; envFP the
	// position-independent declaration environment (types, globals,
	// signatures) every unit's analysis consults; funcHash the full
	// emitted content (positions included — reports embed them).
	optsFP := optionsFingerprint(a.opts)
	envFP := cc.EnvHash(files)
	funcHash := map[*prog.Function]string{}
	for _, fn := range p.All {
		funcHash[fn] = cc.HashDecl(fn.Decl)
	}
	configFP := a.configFingerprint(optsFP)

	// Manifest diff: invalidation accounting for stats and /metrics.
	// Correctness never depends on it — content-addressed keys alone
	// decide reuse.
	manifest := &cache.Manifest{Files: map[string]string{}, Funcs: map[string]string{}}
	for _, f := range files {
		if src, ok := a.srcs[f.Name]; ok {
			manifest.Files[f.Name] = cc.HashBytes([]byte(src))
		} else {
			manifest.Files[f.Name] = cc.HashBytes(cc.EmitFile(f))
		}
	}
	for _, fn := range p.All {
		manifest.Funcs[prog.FuncID(fn)] = funcHash[fn]
	}
	if prev := cache.LoadManifest(a.cacheStore, configFP); prev != nil {
		var changed []*prog.Function
		for _, fn := range p.All {
			if prev.Funcs[prog.FuncID(fn)] != funcHash[fn] {
				changed = append(changed, fn)
			}
		}
		incr.FuncsChanged = len(changed)
		incr.FuncsInvalidated = len(p.DirtyClosure(changed))
	} else {
		incr.FuncsChanged = len(p.All)
		incr.FuncsInvalidated = len(p.All)
	}

	for _, m := range a.sortedMarks() {
		a.shared.Mark(m.name, m.key)
	}

	// Streaming mode (DESIGN.md §12): unit engines spill summaries and
	// evict their caches at retirement, replayed tasks count straight
	// toward AST release (a replay never touches the AST), and the
	// merge engines read the spill store lazily instead of importing
	// every summary up front — the cached path's dominant resident
	// cost. A streaming entry carries no inline Summaries; either mode
	// reads both entry shapes, so spill on/off share cache keys.
	var stream *streamState
	var retire *prog.RetirePlan
	if a.opts.MaxResidentMB > 0 {
		stream, err = a.newStream(p, files, len(a.checkers))
		if err != nil {
			return nil, err
		}
		defer stream.cleanup()
		retire = p.PlanRetire(p.Roots)
	}
	incr.BuildNanos = time.Since(t0).Nanoseconds()

	// Per-unit fingerprints: sorted member FuncID=hash lines.
	unitFP := func(fns []*prog.Function) string {
		lines := make([]string, len(fns))
		for i, fn := range fns {
			lines[i] = prog.FuncID(fn) + "=" + funcHash[fn]
		}
		sort.Strings(lines)
		return strings.Join(lines, "\n")
	}

	t0 = time.Now()
	// Multi-checker compiled dispatch, shared by every live engine in
	// every phase (the structure is purely syntactic, so one build
	// covers all phases; replayed units never consult it).
	var compiled *core.CompiledDispatch
	if a.opts.MultiDispatch {
		compiled = core.CompileDispatch(p, a.checkers)
	}
	tasksByChecker := make([][]*unitTask, len(a.checkers))
	for _, phase := range core.PlanPhases(a.checkers) {
		// The marks visible to every engine in this phase are exactly
		// those present at the barrier: PlanPhases guarantees no
		// intra-phase write-then-read.
		marksFP := cache.Key("marks", a.shared.Snapshot())

		var tasks []*unitTask
		for _, ci := range phase {
			c := a.checkers[ci]
			switch {
			case len(c.Callouts) > 0:
				// Native code: fingerprint can't see it; run live.
				tasks = append(tasks, &unitTask{ci: ci, funcs: p.All, roots: p.Roots})
			case (c.UsesAction("mark_fn") && c.UsesCallout("mc_fn_marked")) || a.opts.MaxBlocks > 0:
				// Whole-program single unit (see package comment).
				key := cache.UnitKey(a.checkerFPs[ci], optsFP, envFP, marksFP, unitFP(p.All))
				tasks = append(tasks, &unitTask{ci: ci, funcs: p.All, roots: p.Roots, key: key})
			default:
				for _, u := range units {
					key := cache.UnitKey(a.checkerFPs[ci], optsFP, envFP, marksFP, unitFP(u.Funcs))
					tasks = append(tasks, &unitTask{ci: ci, funcs: u.Funcs, roots: u.Roots, key: key})
				}
			}
		}

		// Probe the store for every keyed task in one batched
		// round-trip, then offer what is still missing to the fleet
		// (DESIGN.md §15); unfilled keys run locally below.
		a.probeTasks(tasks)
		a.dispatchRemote(ctx, tasks, a.shared.Events(), incr)

		// Run the misses concurrently; slots acquired in task order so
		// -j 1 degenerates to the sequential schedule.
		sem := make(chan struct{}, a.parallelism())
		var wg sync.WaitGroup
		for _, t := range tasks {
			if t.entry != nil {
				continue
			}
			sem <- struct{}{}
			wg.Add(1)
			go func(t *unitTask) {
				defer wg.Done()
				defer func() { <-sem }()
				en := core.NewEngineShared(p, a.checkers[t.ci], a.opts, a.shared)
				if compiled != nil {
					en.SetCompiled(compiled, t.ci)
				}
				if stream != nil {
					en.SetSpill(stream.store, stream.keyFor(a.checkerFPs[t.ci]))
					en.SetRetire(retire, stream.release.done)
					en.ShareRetired(stream.retired[a.checkerFPs[t.ci]])
				}
				t.runs = en.RunRootsContext(ctx, t.roots)
				t.eng = en
			}(t)
		}
		wg.Wait()

		// Post-phase: replayed marks join the store (live marks landed
		// during the run; ordering within the phase is immaterial —
		// marks are an idempotent set read only after the barrier),
		// and fresh results are written back in one batched store
		// round-trip. Degraded or failed units must never be cached:
		// their entries would replay truncated output as if it were
		// complete.
		var puts map[string][]byte
		for _, t := range tasks {
			if t.entry != nil {
				for _, ev := range t.entry.Marks {
					a.shared.Mark(ev.Name, ev.Key)
				}
				if stream != nil {
					// A replayed unit never touches the AST again;
					// count its checker pass toward release now.
					stream.release.done(t.funcs)
				}
				continue
			}
			if t.key != "" && t.eng.Failure == nil && !t.eng.Degraded() {
				if data, err := cache.EncodeUnit(a.buildEntry(t)); err == nil {
					if puts == nil {
						puts = map[string][]byte{}
					}
					puts[t.key] = data
				}
			}
		}
		if len(puts) > 0 {
			cache.PutBatch(a.cacheStore, puts) // best effort
		}
		for _, t := range tasks {
			tasksByChecker[t.ci] = append(tasksByChecker[t.ci], t)
		}
	}
	incr.AnalyzeNanos = time.Since(t0).Nanoseconds()

	// Merge per checker, units in global root order: concatenating the
	// per-root segments through a fresh report set reproduces the plain
	// single-engine emission stream exactly.
	t0 = time.Now()
	res := &Result{
		Program:   p,
		RuleStats: map[string]rank.RuleStat{},
		Stats:     map[string]core.Stats{},
		Engines:   map[string]*core.Engine{},
	}
	for ci, c := range a.checkers {
		me := core.NewEngineShared(p, c, a.opts, a.shared)
		if stream != nil {
			// Streaming: the merge engine holds no summaries at all —
			// inspection (SupergraphString) reloads them from the spill
			// store on demand. AllowSpillReload is safe here because a
			// merge engine never traverses.
			me.SetSpill(stream.store, stream.keyFor(a.checkerFPs[ci]))
			me.AllowSpillReload()
		}
		agg := core.Stats{Analyses: map[string]int{}}
		for _, t := range tasksByChecker[ci] {
			if t.entry != nil {
				for _, rr := range t.entry.Roots {
					for _, r := range rr.Reports {
						me.Reports.Add(r)
					}
				}
				mergeStats(&agg, &t.entry.Stats)
				for rule, rc := range t.entry.Rules {
					mergeRule(me, rule, rc)
				}
				if t.entry.Summaries != nil && stream == nil {
					me.ImportSummaries(t.entry.Summaries)
				}
				incr.UnitsReplayed++
				incr.FuncsAnalyzedReplayed += sumAnalyses(&t.entry.Stats)
			} else {
				en := t.eng
				for _, r := range en.Reports.Reports {
					me.Reports.Add(r)
				}
				mergeStats(&agg, &en.Stats)
				for rule, rc := range en.RuleStats {
					mergeRule(me, rule, rc)
				}
				if stream == nil {
					me.ImportSummaries(en.ExportSummaries(t.funcs))
				}
				incr.UnitsLive++
				incr.FuncsAnalyzedLive += sumAnalyses(&en.Stats)
				collectGovernance(res, en)
			}
		}
		me.Stats = agg
		res.Reports = append(res.Reports, me.Reports.Reports...)
		for rule, rc := range me.RuleStats {
			prev := res.RuleStats[rule]
			prev.Rule = rule
			prev.Examples += rc.Examples
			prev.Violations += rc.Violations
			res.RuleStats[rule] = prev
		}
		res.Stats[c.Name] = agg
		res.Engines[c.Name] = me
	}
	if a.history != nil {
		res.Reports = a.history.Suppress(res.Reports)
	}
	// The manifest is the invalidation baseline for the next run; a
	// partial run must not become that baseline, so only complete runs
	// save it (DESIGN.md §9).
	if len(res.Failures) == 0 && !res.Degraded && ctx.Err() == nil {
		cache.SaveManifest(a.cacheStore, configFP, manifest) // best effort
	}
	incr.MergeNanos = time.Since(t0).Nanoseconds()

	incr.CacheHits = a.cacheMetrics.Hits()
	incr.CacheMisses = a.cacheMetrics.Misses()
	incr.CachePuts = a.cacheMetrics.Puts()
	res.Incr = incr
	if stream != nil {
		ens := make([]*core.Engine, 0, len(a.checkers))
		for _, ts := range tasksByChecker {
			for _, t := range ts {
				ens = append(ens, t.eng) // nil for replays; collectSpill skips
			}
		}
		for _, me := range res.Engines {
			ens = append(ens, me)
		}
		collectSpill(res, stream, ens)
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// probeTasks fills task entries from the store in one batched
// round-trip (cache.GetBatch collapses to one POST on a batch-capable
// backend). A decode failure is a miss, exactly as the old per-key
// probe treated it: the unit re-runs live and is overwritten.
func (a *Analyzer) probeTasks(tasks []*unitTask) {
	var keys []string
	byKey := map[string]*unitTask{}
	for _, t := range tasks {
		if t.key == "" {
			continue
		}
		keys = append(keys, t.key)
		byKey[t.key] = t
	}
	if len(keys) == 0 {
		return
	}
	for key, data := range cache.GetBatch(a.cacheStore, keys) {
		if e, err := cache.DecodeUnit(data); err == nil {
			byKey[key].entry = e
		}
	}
}

// dispatchRemote offers the phase's cache misses to the fleet unit
// runner (DESIGN.md §15), then re-probes the store: workers fill unit
// keys with complete entries, and whatever appeared replays through
// the ordinary path. Keys the runner did not fill stay misses and run
// locally — worker loss or a runner error never fails the analysis.
// Pre-parsed ASTs (AddAST) have no source text to ship, so such runs
// never dispatch.
func (a *Analyzer) dispatchRemote(ctx context.Context, tasks []*unitTask, marks []core.MarkEvent, incr *IncrStats) {
	if a.unitRunner == nil || len(a.files) > 0 {
		return
	}
	var jobs []UnitJob
	var pending []*unitTask
	for _, t := range tasks {
		if t.key == "" || t.entry != nil || a.checkerSrcs[t.ci] == "" {
			continue
		}
		funcs := make([]string, len(t.funcs))
		for i, fn := range t.funcs {
			funcs[i] = prog.FuncID(fn)
		}
		roots := make([]string, len(t.roots))
		for i, fn := range t.roots {
			roots[i] = prog.FuncID(fn)
		}
		jobs = append(jobs, UnitJob{
			Key:        t.key,
			CheckerSrc: a.checkerSrcs[t.ci],
			CheckerFP:  a.checkerFPs[t.ci],
			Funcs:      funcs,
			Roots:      roots,
			Marks:      marks,
		})
		pending = append(pending, t)
	}
	if len(jobs) == 0 {
		return
	}
	files := make(map[string]string, len(a.srcs))
	treeLines := make([]string, 0, len(a.srcs))
	for name, src := range a.srcs {
		files[name] = src
		treeLines = append(treeLines, name+"="+cc.HashBytes([]byte(src)))
	}
	sort.Strings(treeLines)
	run := &UnitRun{
		TreeFP:  cache.Key("tree", strings.Join(treeLines, "\n")),
		Files:   files,
		Options: a.opts,
		Jobs:    jobs,
	}
	if err := a.unitRunner(ctx, run); err != nil {
		return // every job falls back to a local run
	}
	keys := make([]string, len(pending))
	for i, t := range pending {
		keys[i] = t.key
	}
	found := cache.GetBatch(a.cacheStore, keys)
	for _, t := range pending {
		data, ok := found[t.key]
		if !ok {
			continue
		}
		if e, err := cache.DecodeUnit(data); err == nil {
			t.entry = e
			incr.UnitsRemote++
		}
	}
}

// buildEntry serializes a live unit run for the store. Streaming runs
// write no inline Summaries: the engine evicted them to the spill
// store at retirement, and inline copies would put the whole tree's
// summaries back into every warm run's decode path. Summaries are
// advisory (inspection only), so entries with and without them replay
// identically and the two modes share cache keys.
func (a *Analyzer) buildEntry(t *unitTask) *cache.UnitEntry {
	en := t.eng
	e := &cache.UnitEntry{
		Stats: en.Stats,
		Rules: en.RuleStats,
		Marks: en.MarkLog,
	}
	if a.opts.MaxResidentMB == 0 {
		e.Summaries = en.ExportSummaries(t.funcs)
	}
	for _, rr := range t.runs {
		e.Roots = append(e.Roots, cache.RootReports{
			Root:    prog.FuncID(rr.Root),
			Reports: rr.Reports,
		})
	}
	return e
}

// mergeStats accumulates src into dst: counters sum, HitBlockLimit
// ORs, Analyses maps add.
func mergeStats(dst, src *core.Stats) {
	dst.Points += src.Points
	dst.Blocks += src.Blocks
	dst.Paths += src.Paths
	dst.PrunedPaths += src.PrunedPaths
	dst.CacheHits += src.CacheHits
	dst.CacheMisses += src.CacheMisses
	dst.FuncCacheHits += src.FuncCacheHits
	dst.FuncFollows += src.FuncFollows
	dst.RecursionCuts += src.RecursionCuts
	dst.InstanceOps += src.InstanceOps
	dst.HitBlockLimit = dst.HitBlockLimit || src.HitBlockLimit
	for k, v := range src.Analyses {
		dst.Analyses[k] += v
	}
}

func mergeRule(me *core.Engine, rule string, rc *core.RuleCount) {
	prev := me.RuleStats[rule]
	if prev == nil {
		prev = &core.RuleCount{}
		me.RuleStats[rule] = prev
	}
	prev.Examples += rc.Examples
	prev.Violations += rc.Violations
}

// sumAnalyses totals the traversal starts in a stats block.
func sumAnalyses(s *core.Stats) int {
	n := 0
	for _, v := range s.Analyses {
		n += v
	}
	return n
}

// optionsFingerprint renders every semantics-affecting Options field
// into the cache key. Semantics-preserving switches (MatchMemo,
// BlockFilter, TupleIntern, LeanAlloc, MaxResidentMB) are deliberately
// excluded: they cannot change any output byte, so runs under either
// setting share entries — which is also what lets the streaming
// determinism test pin spill-on warm runs against spill-off cold ones.
func optionsFingerprint(o Options) string {
	var sb strings.Builder
	sb.WriteString("opts|")
	for _, b := range []bool{o.Interprocedural, o.BlockCache, o.FunctionCache, o.FPP, o.Synonyms, o.Kills, o.MultiDispatch} {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	sb.WriteString("|")
	sb.WriteString(strings.Join([]string{
		strconv.FormatInt(o.MaxBlocks, 10), strconv.Itoa(o.MaxCallDepth), strconv.Itoa(o.MaxPartitions),
	}, ","))
	// Budgets re-key the cache even though degraded units are never
	// written: a complete run under a tight budget is still a different
	// computation boundary than an unbudgeted one.
	sb.WriteString("|")
	sb.WriteString(strings.Join([]string{
		strconv.FormatInt(o.Budgets.PathSteps, 10),
		strconv.FormatInt(o.Budgets.FuncBlocks, 10),
		strconv.FormatInt(int64(o.Budgets.FuncTime), 10),
	}, ","))
	return sb.String()
}

// configFingerprint identifies the analyzer configuration (checker
// set in load order + options) for the manifest.
func (a *Analyzer) configFingerprint(optsFP string) string {
	parts := append([]string{"config", optsFP}, a.checkerFPs...)
	return cache.Key(parts...)
}

// parseCachedSources is parseSources with the pass-1 AST cache: a
// file whose content hash is cached loads its emitted AST instead of
// re-parsing (the two-pass identity is pinned by the cc round-trip
// tests). Pre-parsed ASTs (AddAST) pass through untouched.
func (a *Analyzer) parseCachedSources(incr *IncrStats) ([]*cc.File, error) {
	files := append([]*cc.File(nil), a.files...)
	names := make([]string, 0, len(a.srcs))
	for n := range a.srcs {
		names = append(names, n)
	}
	sort.Strings(names)

	// One batched Get for every file's AST key up front, one batched
	// Put for every freshly emitted AST at the end — on a batch-capable
	// backend (shared CAS) the whole pass-1 cache costs two
	// round-trips regardless of file count.
	keys := make([]string, len(names))
	for i, name := range names {
		keys[i] = cache.ASTKey(name, cc.HashBytes([]byte(a.srcs[name])))
	}
	cached := cache.GetBatch(a.cacheStore, keys)

	parsed := make([]*cc.File, len(names))
	errs := make([]error, len(names))
	replayed := make([]bool, len(names))
	emitted := make([][]byte, len(names))
	one := func(i int) {
		name := names[i]
		src := a.srcs[name]
		if data, ok := cached[keys[i]]; ok {
			if f, err := cc.ReadFile(data); err == nil {
				parsed[i], replayed[i] = f, true
				return
			}
		}
		f, err := cc.ParseFile(name, src)
		if err != nil {
			errs[i] = err
			return
		}
		parsed[i] = f
		emitted[i] = cc.EmitFile(f)
	}

	workers := a.parallelism()
	if workers > len(names) {
		workers = len(names)
	}
	if workers > 1 {
		idxCh := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					one(i)
				}
			}()
		}
		for i := range names {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
	} else {
		for i := range names {
			one(i)
		}
	}
	var puts map[string][]byte
	for i, data := range emitted {
		if data != nil {
			if puts == nil {
				puts = map[string][]byte{}
			}
			puts[keys[i]] = data
		}
	}
	if len(puts) > 0 {
		cache.PutBatch(a.cacheStore, puts) // best effort
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", names[i], err)
		}
	}
	for _, r := range replayed {
		if r {
			incr.FilesReplayed++
		} else {
			incr.FilesReparsed++
		}
	}
	return append(files, parsed...), nil
}
