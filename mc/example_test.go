package mc_test

import (
	"context"
	"fmt"
	"log"

	"repro/mc"
)

// The basic workflow: add C sources, load a checker, run, read ranked
// reports.
func ExampleAnalyzer() {
	a := mc.NewAnalyzer()
	a.AddSource("drv.c", `
void kfree(void *p);
int handler(int *p) {
    kfree(p);
    return *p;
}`)
	if err := a.LoadBundledChecker("free"); err != nil {
		log.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Ranked() {
		fmt.Println(r)
	}
	// Output:
	// drv.c:5:12: [free_checker] using p after free!
}

// Custom checkers are plain metal text.
func ExampleAnalyzer_customChecker() {
	a := mc.NewAnalyzer()
	a.AddSource("io.c", `
int deprecated_read(int fd, char *buf);
int use(int fd, char *buf) {
    return deprecated_read(fd, buf);
}`)
	err := a.LoadChecker(`
sm no_deprecated;
decl any_arguments args;

start:
    { deprecated_read(args) } ==> start,
        { err("deprecated_read is going away; use read_v2"); }
;`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Reports[0].Msg)
	// Output:
	// deprecated_read is going away; use read_v2
}

// The two-pass pipeline of §6: emit ASTs in pass 1, reload and analyze
// in pass 2.
func ExampleEmitAST() {
	data, err := mc.EmitAST("m.c", `
void kfree(void *p);
void f(int *p) { kfree(p); kfree(p); }
`)
	if err != nil {
		log.Fatal(err)
	}
	f, err := mc.LoadAST(data)
	if err != nil {
		log.Fatal(err)
	}
	a := mc.NewAnalyzer()
	a.AddAST(f)
	a.LoadBundledChecker("free")
	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Reports), "report(s):", res.Reports[0].Msg)
	// Output:
	// 1 report(s): double free of p!
}

// Statistical ranking orders rule groups by the z-statistic: rules
// followed consistently rank their violations first.
func ExampleResult_Grouped() {
	a := mc.NewAnalyzer()
	a.AddSource("z.c", `
void kfree(void *p);
void ok1(int *a) { kfree(a); }
void ok2(int *b) { kfree(b); }
void ok3(int *c) { kfree(c); }
void bug(int *d) { kfree(d); kfree(d); }
`)
	a.LoadBundledChecker("free")
	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range res.Grouped() {
		fmt.Printf("rule %s: %d report(s), %d examples\n",
			g.Rule, len(g.Reports), res.RuleStats[g.Rule].Examples)
	}
	// Output:
	// rule kfree: 1 report(s), 3 examples
}
