// Package repro is the root of a from-scratch Go reproduction of
// Hallem, Chelf, Xie & Engler, "A System and Language for Building
// System-Specific, Static Analyses" (PLDI 2002) — the metal checker
// language and the xgcc analysis engine.
//
// The public API lives in package mc; the engine in internal/core; the
// experiment harness in cmd/mcbench. See README.md, DESIGN.md, and
// EXPERIMENTS.md. The root package holds the cross-cutting benchmark
// suite (bench_test.go), CLI integration tests, and the corpus tests.
package repro
