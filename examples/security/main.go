// Security: system-specific security checking in the style of the
// paper's reference [1] (Ashcraft & Engler): banned functions,
// non-constant format strings, a SECURITY path annotator composed
// into a use-after-free checker, and a custom one-off checker written
// inline — all ranked so SECURITY-class reports surface first.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/mc"
)

const server = `
char *gets(char *s);
char *strcpy(char *d, const char *s);
int printf(const char *fmt, ...);
int copy_from_user(void *dst, void *src, int n);
void kfree(void *p);
int rand(void);

char cmdbuf[128];

/* Classic overflow: unbounded reads of attacker data. */
int read_command(char *out) {
    gets(cmdbuf);
    strcpy(out, cmdbuf);
    return 0;
}

/* Format-string hole: attacker-controlled format. */
int log_command(char *user_msg) {
    return printf(user_msg);
}

/* Use-after-free reachable from user input: the annotator marks the
 * path SECURITY, so this outranks equal-looking local bugs. */
int handle_ioctl(int *state, void *ubuf) {
    copy_from_user(state, ubuf, 4);
    kfree(state);
    return *state;
}

/* Weak randomness for something security-sensitive. */
int make_token(void) {
    return rand();
}
`

// secFree composes the SECURITY path annotator with the free checker
// in one extension (§3.2 composition; §9 checker-specific ranking).
const secFree = `
sm sec_free;
state decl any_pointer v;
decl any_fn_call fn;
decl any_arguments args;

start:
    { fn(args) } && ${ mc_is_call_to(fn, "copy_from_user") } ==> start, { annotate("SECURITY"); }
  | { kfree(v) } ==> v.freed
;

v.freed:
    { *v }       ==> v.stop, { err("using %s after free!", mc_identifier(v)); }
  | { kfree(v) } ==> v.stop, { err("double free of %s!", mc_identifier(v)); }
;
`

// randToken is a system-specific one-off rule: rand() must not mint
// security tokens in this code base.
const randToken = `
sm rand_token_checker;

start:
    { rand() } ==> start,
        { err("rand() is predictable; tokens need a CSPRNG"); classify("SECURITY"); }
;
`

func main() {
	a := mc.NewAnalyzer()
	a.AddSource("server.c", server)
	for _, name := range []string{"banned", "format"} {
		if err := a.LoadBundledChecker(name); err != nil {
			log.Fatal(err)
		}
	}
	if err := a.LoadChecker(secFree); err != nil {
		log.Fatal(err)
	}
	if err := a.LoadChecker(randToken); err != nil {
		log.Fatal(err)
	}

	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d problems (SECURITY class first):\n", len(res.Reports))
	for i, r := range res.Ranked() {
		fmt.Printf("%2d. %s\n", i+1, r)
	}
}
