// Inference: the statistical rule-inference workflow of §3.2 and the
// paper's reference [10] ("Bugs as deviant behavior"): derive
// must-be-paired function rules from the code itself, rank them with
// the z-statistic, and report violations of the trustworthy rules as
// probable bugs — no rule was ever written down by hand.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro/internal/checkers"
	"repro/internal/workload"
	"repro/mc"
)

func main() {
	// A generated code base where res_acquire/res_release are paired
	// by convention in 40 functions, forgotten in 3, plus 20 noise
	// functions calling unrelated helpers in arbitrary order.
	pr := workload.PairedCalls(40, 3, 20, 2026)

	a := mc.NewAnalyzer()
	a.AddSource("base.c", pr.Source)
	// The analyzer needs at least one checker to run; the free checker
	// doubles as a sanity pass here.
	if err := a.LoadBundledChecker("free"); err != nil {
		log.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	pairs := res.InferPairs(func(name string) bool {
		return strings.HasPrefix(name, "res_") || strings.HasPrefix(name, "misc_")
	})

	fmt.Println("inferred candidate rules (z-ranked — only the top is trustworthy):")
	fmt.Print(checkers.FormatPairs(pairs, 6))

	// Violations of rules above the significance cut are probable
	// bugs; everything below the cut is noise the ranking discarded.
	const minZ = 2.0
	reports := checkers.PairReports(pairs, minZ)
	fmt.Printf("\nviolations of rules with z >= %.1f (probable bugs):\n", minZ)
	for _, r := range reports {
		fmt.Printf("  %s\n", r)
	}
	fmt.Printf("\n%d of %d candidate rules survived the cut; %d violations reported\n",
		countAbove(pairs, minZ), len(pairs), len(reports))
}

func countAbove(pairs []checkers.InferredPair, minZ float64) int {
	n := 0
	for _, p := range pairs {
		if p.Z() >= minZ {
			n++
		}
	}
	return n
}
