// Kernelaudit: the full workflow a systems team would run nightly —
// every bundled checker over a whole driver tree, reports grouped by
// rule and ordered by the z-statistic (§9), engine statistics, and
// history suppression so the next run only shows new findings.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/workload"
	"repro/mc"
)

func main() {
	// A generated four-file driver tree with a seeded mixed bug
	// population (stand-in for the paper's Linux/BSD trees; see
	// DESIGN.md §2).
	srcs, bugs := workload.MixedTree(4, 25, 7)

	a := mc.NewAnalyzer()
	for name, src := range srcs {
		a.AddSource(name, src)
	}
	suite := []string{"free", "lock", "null", "leak", "interrupt", "banned", "format", "realloc"}
	for _, c := range suite {
		if err := a.LoadBundledChecker(c); err != nil {
			log.Fatal(err)
		}
	}

	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("audited %d files / %d functions with %d checkers (%d bugs seeded)\n\n",
		len(srcs), len(res.Program.All), len(suite), len(bugs))

	// Grouped, z-ranked output: trustworthy rules first; within a
	// rule, generic ranking (§9).
	for _, g := range res.Grouped() {
		fmt.Printf("=== rule %-14s z=%5.2f  %d reports ===\n", g.Rule, g.Z, len(g.Reports))
		for i, r := range g.Reports {
			if i == 3 {
				fmt.Printf("    ... %d more\n", len(g.Reports)-3)
				break
			}
			fmt.Printf("    %s\n", r)
		}
	}

	// Engine work, per checker.
	fmt.Println("\nanalysis statistics:")
	names := make([]string, 0, len(res.Stats))
	for n := range res.Stats {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := res.Stats[n]
		fmt.Printf("  %-20s points=%-6d paths=%-5d pruned=%-4d cache-hits=%-5d fn-cache-hits=%d\n",
			n, s.Points, s.Paths, s.PrunedPaths, s.CacheHits, s.FuncCacheHits)
	}

	// Night two: the same tree re-audited with history suppression —
	// everything known is filtered, so the report is empty until new
	// code lands (§8 "History").
	b := mc.NewAnalyzer()
	for name, src := range srcs {
		b.AddSource(name, src)
	}
	for _, c := range suite {
		if err := b.LoadBundledChecker(c); err != nil {
			log.Fatal(err)
		}
	}
	b.SetHistory(res.Reports)
	res2, err := b.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-audit with history suppression: %d new reports (was %d)\n",
		len(res2.Reports), len(res.Reports))
}
