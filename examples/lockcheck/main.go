// Lockcheck: the Figure 3 lock checker applied to a synthetic device
// driver — nonblocking trylock with path-specific transitions,
// interprocedural lock flow through helper functions, and the
// $end_of_path$ missing-release check.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/mc"
)

const driver = `
void lock(int *l);
void unlock(int *l);
int trylock(int *l);
void *kmalloc(unsigned long n);
void kfree(void *p);

struct device {
    int mutex;
    int irq_lock;
    int refs;
};

/* Helper releases the device lock for its callers. */
static void dev_put(struct device *dev) {
    dev->refs--;
    unlock(&dev->mutex);
}

/* OK: lock flows into dev_put and is released there. */
int dev_update(struct device *dev, int v) {
    lock(&dev->mutex);
    dev->refs = v;
    dev_put(dev);
    return 0;
}

/* OK: nonblocking acquisition handled on both outcomes. */
int dev_try_update(struct device *dev, int v) {
    if (!trylock(&dev->mutex))
        return -1;
    dev->refs = v;
    unlock(&dev->mutex);
    return 0;
}

/* BUG: the early-error return leaks the lock. */
int dev_read(struct device *dev, int *out) {
    lock(&dev->irq_lock);
    if (dev->refs == 0)
        return -1;
    *out = dev->refs;
    unlock(&dev->irq_lock);
    return 0;
}

/* BUG: releasing a lock that was never taken on this path. */
int dev_reset(struct device *dev, int hard) {
    if (hard)
        lock(&dev->mutex);
    dev->refs = 0;
    unlock(&dev->mutex);
    return 0;
}
`

func main() {
	a := mc.NewAnalyzer()
	a.AddSource("driver.c", driver)
	if err := a.LoadBundledChecker("lock"); err != nil {
		log.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lock checker found %d problems:\n", len(res.Reports))
	for _, r := range res.Ranked() {
		fmt.Printf("  %s\n", r)
	}

	// Rule evidence feeds the §9 statistical ranking: the lock rule is
	// followed far more often than violated, so its violations are
	// probably real.
	if st, ok := res.RuleStats["lock"]; ok {
		fmt.Printf("\nrule 'lock': followed %d times, violated %d times (z=%.2f)\n",
			st.Examples, st.Violations, st.Z())
	}
}
