// Quickstart: run the paper's Figure 1 free checker over the Figure 2
// example and print the two use-after-free errors with their
// why-traces — the complete §2.2 walkthrough in a dozen lines of API.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/mc"
)

// fig2 is the example code from Figure 2 of the paper, line numbers
// preserved. The checker must find exactly two errors: the use of q
// after free at line 12 and the use of w after free at line 17. The
// potential report at line 11 is a false path (x and !x contradict)
// and is pruned.
const fig2 = `int contrived(int *p, int *w, int x) {
    int *q;

    if(x)
    {
        kfree(w);
        q = p;
        p = 0;
    }
    if(!x)
        return *w;
    return *q;
}
int contrived_caller(int *w, int x, int *p) {
    kfree(p);
    contrived(p, w, x);
    return *w;
}
void kfree(void *p);
`

func main() {
	a := mc.NewAnalyzer()
	a.AddSource("fig2.c", fig2)
	if err := a.LoadBundledChecker("free"); err != nil {
		log.Fatal(err)
	}
	res, err := a.RunContext(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d errors:\n\n", len(res.Reports))
	for _, r := range res.Ranked() {
		fmt.Println(r.Detailed())
	}

	st := res.Stats["free_checker"]
	fmt.Printf("analysis: %d program points, %d paths (%d pruned as infeasible), %d block-cache hits\n",
		st.Points, st.Paths, st.PrunedPaths, st.CacheHits)
}
