// Package repro's root benchmarks regenerate the paper's performance
// claims: one benchmark per figure/table axis (see DESIGN.md §4 and
// EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/metal"
	"repro/internal/prog"
	"repro/internal/rank"
	"repro/internal/workload"
	"repro/mc"
)

func mustProgB(b *testing.B, srcs map[string]string) *prog.Program {
	b.Helper()
	p, err := prog.BuildSource(srcs)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func mustCheckerB(b *testing.B, name string) *metal.Checker {
	b.Helper()
	c, err := checkers.Parse(name)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkF4Caching measures the Figure 4 claim: block-level caching
// turns the exponential path DFS linear. CacheOn stays flat in n;
// CacheOff doubles per diamond.
func BenchmarkF4Caching(b *testing.B) {
	for _, n := range []int{8, 10, 12} {
		pr := workload.DiamondChain(n)
		srcs := map[string]string{"d.c": pr.Source}
		b.Run(fmt.Sprintf("CacheOn/diamonds=%d", n), func(b *testing.B) {
			p := mustProgB(b, srcs)
			opts := core.DefaultOptions()
			opts.FPP = false
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				en := core.NewEngine(p, mustCheckerB(b, "free"), opts)
				en.Run()
			}
		})
		b.Run(fmt.Sprintf("CacheOff/diamonds=%d", n), func(b *testing.B) {
			p := mustProgB(b, srcs)
			opts := core.DefaultOptions()
			opts.FPP = false
			opts.BlockCache = false
			opts.MaxBlocks = 5_000_000
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				en := core.NewEngine(p, mustCheckerB(b, "free"), opts)
				en.Run()
			}
		})
	}
}

// BenchmarkE1Independence measures §5.2: analysis work grows linearly
// with the number of tracked instances.
func BenchmarkE1Independence(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		pr := workload.InstanceScaling(k, 8)
		srcs := map[string]string{"s.c": pr.Source}
		b.Run(fmt.Sprintf("instances=%d", k), func(b *testing.B) {
			p := mustProgB(b, srcs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				en := core.NewEngine(p, mustCheckerB(b, "free"), core.DefaultOptions())
				en.Run()
			}
		})
	}
}

// BenchmarkE2FunctionCache measures §6.2: function-summary memoization
// across many callsites.
func BenchmarkE2FunctionCache(b *testing.B) {
	pr := workload.CallsiteFanout(64)
	srcs := map[string]string{"c.c": pr.Source}
	b.Run("CacheOn", func(b *testing.B) {
		p := mustProgB(b, srcs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			en := core.NewEngine(p, mustCheckerB(b, "free"), core.DefaultOptions())
			en.Run()
		}
	})
	b.Run("CacheOff", func(b *testing.B) {
		p := mustProgB(b, srcs)
		opts := core.DefaultOptions()
		opts.FunctionCache = false
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			en := core.NewEngine(p, mustCheckerB(b, "free"), opts)
			en.Run()
		}
	})
}

// BenchmarkE3FPP measures the cost and effect of false path pruning
// over the contradictory-branch population.
func BenchmarkE3FPP(b *testing.B) {
	pr := workload.ContradictoryBranches(50, 0.2, 42)
	srcs := map[string]string{"x.c": pr.Source}
	for _, on := range []bool{true, false} {
		name := "FPPOn"
		if !on {
			name = "FPPOff"
		}
		b.Run(name, func(b *testing.B) {
			p := mustProgB(b, srcs)
			opts := core.DefaultOptions()
			opts.FPP = on
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				en := core.NewEngine(p, mustCheckerB(b, "free"), opts)
				en.Run()
			}
		})
	}
}

// BenchmarkE5Ranking measures the statistical ranking pipeline over a
// realistic report population.
func BenchmarkE5Ranking(b *testing.B) {
	pr := workload.LockReliability(120, 8, 40)
	p := mustProgB(b, map[string]string{"lk.c": pr.Source})
	en := core.NewEngine(p, mustCheckerB(b, "lock"), core.DefaultOptions())
	rs := en.Run()
	stats := map[string]rank.RuleStat{}
	for rule, rc := range en.RuleStats {
		stats[rule] = rank.RuleStat{Rule: rule, Examples: rc.Examples, Violations: rc.Violations}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rank.Statistical(rs.Reports, stats)
	}
}

// BenchmarkE8Emit measures pass-1 AST emission (the paper's two-pass
// front end).
func BenchmarkE8Emit(b *testing.B) {
	srcs := workload.LinuxLike(2, 30, 7)
	var name string
	var src string
	for n, s := range srcs {
		name, src = n, s
		break
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.EmitAST(name, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleLinuxLike runs the full checker suite over a generated
// multi-file driver tree — the closest stand-in for the paper's
// "scales to large programs" claim.
func BenchmarkScaleLinuxLike(b *testing.B) {
	for _, files := range []int{2, 8} {
		srcs := workload.LinuxLike(files, 25, 7)
		b.Run(fmt.Sprintf("files=%d", files), func(b *testing.B) {
			p := mustProgB(b, srcs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, cname := range []string{"free", "lock", "null", "interrupt"} {
					en := core.NewEngine(p, mustCheckerB(b, cname), core.DefaultOptions())
					en.Run()
				}
			}
		})
	}
}

// BenchmarkParse measures the C front end alone.
func BenchmarkParse(b *testing.B) {
	srcs := workload.LinuxLike(1, 50, 3)
	var src string
	for _, s := range srcs {
		src = s
		break
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.BuildSource(map[string]string{"x.c": src}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPatternMatch measures the matcher on a hot pattern.
func BenchmarkPatternMatch(b *testing.B) {
	pr := workload.UseAfterFree(workload.Config{Seed: 1, Functions: 40, BranchesPerFunc: 3, BugRate: 0.25})
	p := mustProgB(b, map[string]string{"w.c": pr.Source})
	c := mustCheckerB(b, "free")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		en := core.NewEngine(p, c, core.DefaultOptions())
		en.Run()
	}
}
