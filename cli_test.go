package repro

// End-to-end CLI tests: build and drive the three commands the way a
// user would. These run `go run ./cmd/...` in the repository root.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const cliFixture = `
void kfree(void *p);
void lock(int *l);
void unlock(int *l);
int shared;
int use_after_free(int *p) {
    kfree(p);
    return *p;
}
void unbalanced(void) {
    lock(&shared);
}
`

func TestXgccCLIBasic(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	src := writeTemp(t, "fix.c", cliFixture)
	out, err := runCmd(t, "./cmd/xgcc", "-checker", "free,lock", src)
	if err != nil {
		t.Fatalf("xgcc failed: %v\n%s", err, out)
	}
	for _, want := range []string{"using p after free!", "never released", "2 reports"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestXgccCLIListAndStats(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out, err := runCmd(t, "./cmd/xgcc", "-list")
	if err != nil {
		t.Fatalf("xgcc -list failed: %v\n%s", err, out)
	}
	for _, want := range []string{"free", "lock", "null", "taint", "chroot"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %q:\n%s", want, out)
		}
	}

	src := writeTemp(t, "fix.c", cliFixture)
	out, err = runCmd(t, "./cmd/xgcc", "-checker", "free", "-stats", "-why", src)
	if err != nil {
		t.Fatalf("xgcc -stats failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "points=") || !strings.Contains(out, "enters state freed") {
		t.Errorf("stats/why output wrong:\n%s", out)
	}
}

func TestXgccCLITwoPassAndCheckerFile(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	src := writeTemp(t, "fix.c", cliFixture)
	checker := writeTemp(t, "my.metal", `
sm my_checker;
state decl any_pointer v;
start: { kfree(v) } ==> v.freed;
v.freed: { *v } ==> v.stop, { err("MY-MARKER %s", mc_identifier(v)); };
`)
	out, err := runCmd(t, "./cmd/xgcc", "-checker-file", checker, "-two-pass", src)
	if err != nil {
		t.Fatalf("xgcc -checker-file failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "MY-MARKER p") {
		t.Errorf("custom checker not applied:\n%s", out)
	}
}

func TestMetalcCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out, err := runCmd(t, "./cmd/metalc", "-bundled", "lock")
	if err != nil {
		t.Fatalf("metalc failed: %v\n%s", err, out)
	}
	for _, want := range []string{"checker lock_checker", "state variable l", "true=l.locked"} {
		if !strings.Contains(out, want) {
			t.Errorf("metalc output missing %q:\n%s", want, out)
		}
	}
}

func TestMcbenchCLISingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	out, err := runCmd(t, "./cmd/mcbench", "-exp", "t2")
	if err != nil {
		t.Fatalf("mcbench failed: %v\n%s", err, out)
	}
	if strings.Count(out, "-> ok") != 5 {
		t.Errorf("T2 rows not all ok:\n%s", out)
	}
}

func TestXgccCLIJSONAndDirectory(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.c"), []byte(cliFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runCmd(t, "./cmd/xgcc", "-checker", "free", "-json", dir)
	if err != nil {
		t.Fatalf("xgcc -json failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, `"checker":"free_checker"`) || !strings.Contains(out, `"message":"using p after free!"`) {
		t.Errorf("json output wrong:\n%s", out)
	}
}

func TestXgccCLIBaselineHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go run")
	}
	dir := t.TempDir()
	v1 := filepath.Join(dir, "mod.c")
	if err := os.WriteFile(v1, []byte(cliFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	hist := filepath.Join(dir, "baseline.json")

	// First run: reports appear and are recorded.
	out, err := runCmd(t, "./cmd/xgcc", "-checker", "free,lock", "-baseline", hist, v1)
	if err != nil {
		t.Fatalf("run 1: %v\n%s", err, out)
	}
	if !strings.Contains(out, "2 reports") {
		t.Fatalf("run 1 should report twice:\n%s", out)
	}

	// Second run on an edited version (lines shifted): everything
	// known is suppressed.
	if err := os.WriteFile(v1, []byte("/* banner */\n\n"+cliFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCmd(t, "./cmd/xgcc", "-checker", "free,lock", "-baseline", hist, v1)
	if err != nil {
		t.Fatalf("run 2: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 reports") {
		t.Errorf("run 2 should be silent after history suppression:\n%s", out)
	}

	// Third run with a fresh bug: only the new report surfaces.
	edited := "/* banner */\n\n" + cliFixture + `
int fresh_bug(int *q) {
    kfree(q);
    return *q;
}
`
	if err := os.WriteFile(v1, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = runCmd(t, "./cmd/xgcc", "-checker", "free,lock", "-baseline", hist, v1)
	if err != nil {
		t.Fatalf("run 3: %v\n%s", err, out)
	}
	if !strings.Contains(out, "1 reports") || !strings.Contains(out, "using q after free!") {
		t.Errorf("run 3 should show only the fresh bug:\n%s", out)
	}
}
