#!/bin/sh
# Smoke-start the xgccd fleet roles (DESIGN.md §15): build the daemon,
# boot a coordinator, boot a worker against the coordinator's shared
# CAS, rewire the coordinator to dispatch onto that worker, check both
# health endpoints, and push one analyze through the coordinator —
# asserting units were actually filled remotely. `make check` runs
# this so a flag, startup, or dispatch regression in either role fails
# the gate.
#
# Boot order (the two roles name each other, so ephemeral ports need
# one restart): coordinator on :0 -> worker against its CAS URL ->
# coordinator again on its now-known port with -workers set.
set -eu

tmp="$(mktemp -d)"
CO_PID=''
W_PID=''
cleanup() {
	[ -n "$W_PID" ] && kill "$W_PID" 2>/dev/null || true
	[ -n "$CO_PID" ] && kill "$CO_PID" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/xgccd" ./cmd/xgccd

wait_ready() {
	i=0
	while [ ! -f "$1" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "smoke-fleet: $2 never wrote its ready file" >&2
			exit 1
		fi
		sleep 0.1
	done
}

"$tmp/xgccd" -coordinator -addr 127.0.0.1:0 -ready-file "$tmp/co.addr" >"$tmp/co.log" 2>&1 &
CO_PID=$!
wait_ready "$tmp/co.addr" coordinator
CO_ADDR="$(cat "$tmp/co.addr")"

"$tmp/xgccd" -worker -cas "http://$CO_ADDR/v1/cas" -addr 127.0.0.1:0 -ready-file "$tmp/w.addr" >"$tmp/w.log" 2>&1 &
W_PID=$!
wait_ready "$tmp/w.addr" worker
W_ADDR="$(cat "$tmp/w.addr")"

# Restart the coordinator on its (now known) port, dispatching to the
# worker. The worker's CAS URL stays valid across the restart.
kill "$CO_PID" 2>/dev/null || true
wait "$CO_PID" 2>/dev/null || true
rm -f "$tmp/co.addr"
"$tmp/xgccd" -coordinator -addr "$CO_ADDR" -workers "http://$W_ADDR" -ready-file "$tmp/co.addr" >"$tmp/co.log" 2>&1 &
CO_PID=$!
wait_ready "$tmp/co.addr" coordinator

curl -fsS "http://$CO_ADDR/v1/healthz" >/dev/null ||
	{ echo "smoke-fleet: coordinator /v1/healthz failed" >&2; cat "$tmp/co.log" >&2; exit 1; }
curl -fsS "http://$W_ADDR/v1/healthz" | grep -q '"worker"' ||
	{ echo "smoke-fleet: worker /v1/healthz failed" >&2; cat "$tmp/w.log" >&2; exit 1; }

body='{"files": {"smoke.c": "void kfree(void *p); int f(int *p) { kfree(p); return *p; }"}}'
resp="$(curl -fsS -X POST "http://$CO_ADDR/v1/analyze" -d "$body")" ||
	{ echo "smoke-fleet: coordinator analyze failed" >&2; cat "$tmp/co.log" >&2; exit 1; }
echo "$resp" | grep -q '"reports"' ||
	{ echo "smoke-fleet: analyze response missing reports: $resp" >&2; exit 1; }
echo "$resp" | grep -q '"units_remote": 0' &&
	{ echo "smoke-fleet: no units filled remotely" >&2; cat "$tmp/w.log" >&2; exit 1; }

echo "smoke-fleet: coordinator ($CO_ADDR) dispatched onto worker ($W_ADDR)"
