/* ringbuf.c — an interrupt-safe ring buffer. One deliberate missing
 * sti() on an early-exit path and one lock leak. */

void cli(void);
void sti(void);
void lock(int *l);
void unlock(int *l);
void *kmalloc(unsigned long n);
void kfree(void *p);

struct ring {
    int lock;
    int head;
    int tail;
    int cap;
    int *data;
};

int ring_push(struct ring *r, int v)
{
    cli();
    if ((r->head + 1) % r->cap == r->tail) {
        return -1;               /* BUG: interrupts left disabled */
    }
    r->data[r->head] = v;
    r->head = (r->head + 1) % r->cap;
    sti();
    return 0;
}

int ring_pop(struct ring *r, int *out)
{
    int got = 0;
    lock(&r->lock);
    if (r->head != r->tail) {
        *out = r->data[r->tail];
        r->tail = (r->tail + 1) % r->cap;
        got = 1;
    }
    if (got)
        unlock(&r->lock);        /* BUG: lock leaked when empty */
    return got;
}

int ring_reset(struct ring *r)
{
    lock(&r->lock);
    r->head = 0;
    r->tail = 0;
    unlock(&r->lock);
    return 0;
}
