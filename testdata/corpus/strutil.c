/* strutil.c — clean string helpers: the checkers must stay silent. */

typedef unsigned long size_t;
void *kmalloc(size_t n);
void kfree(void *p);

size_t str_len(const char *s)
{
    size_t n = 0;
    while (s[n] != '\0')
        n++;
    return n;
}

char *str_dup(const char *s)
{
    size_t n = str_len(s);
    char *out = kmalloc(n + 1);
    size_t i;
    if (!out)
        return 0;
    for (i = 0; i <= n; i++)
        out[i] = s[i];
    return out;
}

int str_eq(const char *a, const char *b)
{
    size_t i = 0;
    for (;;) {
        if (a[i] != b[i])
            return 0;
        if (a[i] == '\0')
            return 1;
        i++;
    }
}

void str_free(char *s)
{
    if (s)
        kfree(s);
}
