/* slab.c — a miniature slab-style allocator in the style of kernel
 * code. Contains one deliberate double-free in slab_destroy and a
 * use-after-free in slab_shrink. */

typedef unsigned long size_t;

void *kmalloc(size_t n);
void kfree(void *p);
void lock(int *l);
void unlock(int *l);
int printk(const char *fmt, ...);

struct slab {
    int lock;
    int nobj;
    int objsize;
    char *base;
    struct slab *next;
};

static struct slab *slab_cache;

struct slab *slab_create(int objsize, int nobj)
{
    struct slab *s = kmalloc(sizeof(struct slab));
    if (!s)
        return 0;
    s->objsize = objsize;
    s->nobj = nobj;
    s->base = kmalloc((size_t)(objsize * nobj));
    if (!s->base) {
        kfree(s);
        return 0;
    }
    s->next = slab_cache;
    slab_cache = s;
    return s;
}

void *slab_alloc(struct slab *s, int idx)
{
    if (idx < 0 || idx >= s->nobj)
        return 0;
    lock(&s->lock);
    s->nobj--;
    unlock(&s->lock);
    return s->base + idx * s->objsize;
}

void slab_destroy(struct slab *s)
{
    if (!s)
        return;
    kfree(s->base);
    kfree(s);
    kfree(s->base);              /* BUG: double free of s->base */
}

int slab_shrink(struct slab *s)
{
    char *old = s->base;
    kfree(old);
    s->base = kmalloc((size_t)(s->objsize * s->nobj / 2));
    if (!s->base)
        return old[0];           /* BUG: use after free of old */
    return 0;
}
