/* sysctl.c — a syscall-handler-shaped module. One deliberate
 * unchecked user index and one chroot without chdir. */

int get_user(int v, void *src);
int chroot(const char *path);
int chdir(const char *path);
int printk(const char *fmt, ...);

static int limits[32];

int sysctl_read(void *ubuf)
{
    int idx;
    get_user(idx, ubuf);
    if (idx >= 32)
        return -1;
    return limits[idx];
}

int sysctl_write(void *ubuf, int val)
{
    int idx;
    get_user(idx, ubuf);
    limits[idx] = val;             /* BUG: unchecked user index */
    return 0;
}

int enter_jail(const char *root, int hard)
{
    if (chroot(root) < 0)
        return -1;
    if (hard) {
        chdir("/");
        return 0;
    }
    return 1;                      /* BUG: jailed without chdir("/") */
}

int enter_jail_ok(const char *root)
{
    chroot(root);
    chdir("/");
    return 0;
}
